// Copyright (c) 2026 The ktg Authors.
// util/shutdown: the cooperative SIGINT/SIGTERM machinery behind ktgd's
// drain loop and the batch binaries' sidecar flush.

#include <csignal>

#include <gtest/gtest.h>

#include "util/shutdown.h"

namespace ktg {
namespace {

// Must run before any flush is registered in this process: with flushes
// registered the real handler _exit(130)s, which would kill the test
// binary. gtest runs tests in declaration order within a file.
TEST(ShutdownTest, SignalSetsPolledFlag) {
  InstallShutdownHandlers();
  EXPECT_FALSE(ShutdownRequested());
  std::raise(SIGTERM);
  EXPECT_TRUE(ShutdownRequested());
  ResetShutdownForTest();
  EXPECT_FALSE(ShutdownRequested());
}

TEST(ShutdownTest, FlushesRunOnceAndUnregisterRemoves) {
  int a = 0;
  int b = 0;
  const int id_a = RegisterShutdownFlush([&] { ++a; });
  const int id_b = RegisterShutdownFlush([&] { ++b; });

  RunShutdownFlushesForTest();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
  // Re-entry guard: a second run without a reset is a no-op.
  RunShutdownFlushesForTest();
  EXPECT_EQ(a, 1);

  ResetShutdownForTest();
  UnregisterShutdownFlush(id_b);
  RunShutdownFlushesForTest();
  EXPECT_EQ(a, 2);
  EXPECT_EQ(b, 1);

  ResetShutdownForTest();
  UnregisterShutdownFlush(id_a);
  UnregisterShutdownFlush(9999);  // unknown ids are a no-op
  RunShutdownFlushesForTest();
  EXPECT_EQ(a, 2);
  ResetShutdownForTest();
}

}  // namespace
}  // namespace ktg
