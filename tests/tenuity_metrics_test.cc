// Copyright (c) 2026 The ktg Authors.
// Tests for the Section-II tenuity-metric zoo and the claims the paper
// builds on them (a zero k-triangle group may still contain k-lines; a
// positive k-tenuity ratio means some pair is within k hops; only the
// k-distance group forbids all of it).

#include <gtest/gtest.h>

#include "core/paper_example.h"
#include "core/tenuity_metrics.h"
#include "datagen/generators.h"
#include "util/sorted_vector.h"

namespace ktg {
namespace {

std::vector<VertexId> V(std::initializer_list<VertexId> v) { return v; }

TEST(TenuityMetricsTest, EdgeCountAndDensity) {
  const Graph g = CycleGraph(6);
  EXPECT_EQ(GroupEdgeCount(g, V({0, 1, 2})), 2u);
  EXPECT_DOUBLE_EQ(GroupDensity(g, V({0, 1, 2})), 2.0 / 3.0);
  EXPECT_EQ(GroupEdgeCount(g, V({0, 2, 4})), 0u);
  EXPECT_DOUBLE_EQ(GroupDensity(g, V({0, 2, 4})), 0.0);
  EXPECT_DOUBLE_EQ(GroupDensity(g, V({3})), 0.0);
}

TEST(TenuityMetricsTest, KLineCountOnPath) {
  const Graph g = PathGraph(10);
  // Members 0, 3, 6, 9: pairwise distances 3, 6, 9, 3, 6, 3.
  EXPECT_EQ(KLineCount(g, V({0, 3, 6, 9}), 2), 0u);
  EXPECT_EQ(KLineCount(g, V({0, 3, 6, 9}), 3), 3u);
  EXPECT_EQ(KLineCount(g, V({0, 3, 6, 9}), 6), 5u);
  EXPECT_EQ(KLineCount(g, V({0, 3, 6, 9}), 9), 6u);
}

TEST(TenuityMetricsTest, KTriangles) {
  const Graph g = CompleteGraph(5);
  // Every pair is at distance 1 < 2: all C(4,3) triples are 2-triangles.
  EXPECT_EQ(KTriangleCount(g, V({0, 1, 2, 3}), 2), 4u);
  // But no pair is at distance < 1.
  EXPECT_EQ(KTriangleCount(g, V({0, 1, 2, 3}), 1), 0u);
}

TEST(TenuityMetricsTest, KTrianglesCanMissKLines) {
  // The paper's motivation for k-lines over k-triangles: a path group has
  // close PAIRS but no close triple.
  const Graph g = PathGraph(7);
  const auto members = V({0, 2, 6});
  EXPECT_EQ(KTriangleCount(g, members, 3), 0u);  // no 3-triangle
  EXPECT_GT(KLineCount(g, members, 2), 0u);      // yet 0 and 2 are close
}

TEST(TenuityMetricsTest, KTenuityRatio) {
  const Graph g = PathGraph(10);
  // {0, 1, 9}: pair (0,1) within 2 hops; the other two pairs are not.
  EXPECT_DOUBLE_EQ(KTenuityRatio(g, V({0, 1, 9}), 2), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(KTenuityRatio(g, V({0, 5, 9}), 2), 0.0);
  // The paper's critique of [18]: ratio > 0 admits a direct neighbor pair.
  EXPECT_GT(KTenuityRatio(g, V({0, 1, 9}), 1), 0.0);
}

TEST(TenuityMetricsTest, GroupTenuityDefinition4) {
  const Graph g = PathGraph(10);
  EXPECT_EQ(GroupTenuity(g, V({0, 4, 9})), 4);
  EXPECT_EQ(GroupTenuity(g, V({0, 1})), 1);
  EXPECT_EQ(GroupTenuity(g, V({5})), kUnreachable);
  // Disconnected pair.
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  const Graph split = b.Build();
  EXPECT_EQ(GroupTenuity(split, V({0, 3})), kUnreachable);
}

TEST(TenuityMetricsTest, KDistanceGroupIffTenuityExceedsK) {
  Rng rng(0x77);
  const Graph g = BarabasiAlbert(80, 3, rng);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<VertexId> members;
    for (int i = 0; i < 3; ++i) {
      members.push_back(static_cast<VertexId>(rng.Below(80)));
    }
    SortUnique(members);
    if (members.size() < 2) continue;
    for (const HopDistance k : {1, 2, 3}) {
      const bool is_k_distance = KLineCount(g, members, k) == 0;
      EXPECT_EQ(is_k_distance, GroupTenuity(g, members) > k);
    }
  }
}

TEST(TenuityMetricsTest, PropertyOneMonotoneInK) {
  // Property 1: k-line counts only grow with k; a k1-distance group is a
  // k2-distance group for k1 > k2.
  Rng rng(0x78);
  const Graph g = WattsStrogatz(60, 2, 0.2, rng);
  const auto members = V({3, 17, 41, 55});
  uint64_t prev = 0;
  for (HopDistance k = 1; k <= 6; ++k) {
    const uint64_t lines = KLineCount(g, members, k);
    EXPECT_GE(lines, prev);
    prev = lines;
  }
}

TEST(TenuityMetricsTest, PaperExampleGroups) {
  const AttributedGraph g = PaperExampleGraph();
  // The paper's result groups are 1-distance groups.
  EXPECT_GT(GroupTenuity(g.graph(), V({1, 4, 10})), 1);
  EXPECT_GT(GroupTenuity(g.graph(), V({1, 5, 10})), 1);
  // u6-u7 are adjacent: tenuity 1, one 1-line.
  EXPECT_EQ(GroupTenuity(g.graph(), V({6, 7})), 1);
  EXPECT_EQ(KLineCount(g.graph(), V({6, 7}), 1), 1u);
}

}  // namespace
}  // namespace ktg
