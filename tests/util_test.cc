// Copyright (c) 2026 The ktg Authors.
// Unit tests for the util substrate: Status/Result, Rng, Zipf, bit masks,
// sorted-vector ops and summary statistics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/bits.h"
#include "util/rng.h"
#include "util/sorted_vector.h"
#include "util/status.h"
#include "util/summary_stats.h"
#include "util/zipf.h"

namespace ktg {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad p");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad p");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad p");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (const auto code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kIoError, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kResourceExhausted,
        StatusCode::kUnimplemented, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(3);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.Below(bound), bound);
  }
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr uint64_t kBound = 10;
  constexpr int kSamples = 20000;
  int counts[kBound] = {0};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.Below(kBound)];
  for (const int c : counts) {
    EXPECT_GT(c, kSamples / kBound * 0.8);
    EXPECT_LT(c, kSamples / kBound * 1.2);
  }
}

TEST(RngTest, UniformInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 500; ++i) {
    const int64_t x = rng.Uniform(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    saw_lo |= (x == -2);
    saw_hi |= (x == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, SampleDistinctSparse) {
  Rng rng(13);
  const auto s = rng.SampleDistinct(1000000, 50);
  std::set<uint64_t> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 50u);
  for (const uint64_t x : s) EXPECT_LT(x, 1000000u);
}

TEST(RngTest, SampleDistinctDense) {
  Rng rng(13);
  const auto s = rng.SampleDistinct(10, 10);
  std::set<uint64_t> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 10u);  // a full permutation of 0..9
  EXPECT_EQ(*set.begin(), 0u);
  EXPECT_EQ(*set.rbegin(), 9u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution z(100, 1.0);
  double sum = 0.0;
  for (uint64_t r = 0; r < z.size(); ++r) sum += z.Pmf(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  ZipfDistribution z(50, 1.2);
  EXPECT_GT(z.Pmf(0), z.Pmf(1));
  EXPECT_GT(z.Pmf(1), z.Pmf(10));
  EXPECT_GT(z.Pmf(10), z.Pmf(49));
}

TEST(ZipfTest, ZeroExponentIsUniform) {
  ZipfDistribution z(20, 0.0);
  for (uint64_t r = 0; r < 20; ++r) EXPECT_NEAR(z.Pmf(r), 0.05, 1e-9);
}

TEST(ZipfTest, SampleMatchesPmf) {
  ZipfDistribution z(10, 1.0);
  Rng rng(23);
  std::vector<int> counts(10, 0);
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) ++counts[z.Sample(rng)];
  for (uint64_t r = 0; r < 10; ++r) {
    const double expected = z.Pmf(r) * kSamples;
    EXPECT_NEAR(counts[r], expected, 5 * std::sqrt(expected) + 5);
  }
}

TEST(BitsTest, PopCountAndLowBits) {
  EXPECT_EQ(PopCount(0), 0);
  EXPECT_EQ(PopCount(0b1011), 3);
  EXPECT_EQ(LowBits(0), 0u);
  EXPECT_EQ(LowBits(3), 0b111u);
  EXPECT_EQ(LowBits(64), ~uint64_t{0});
  EXPECT_EQ(PopCount(LowBits(17)), 17);
}

TEST(BitsTest, NovelBits) {
  EXPECT_EQ(NovelBits(0b1110, 0b0110), 0b1000u);
  EXPECT_EQ(NovelBits(0b1110, 0), 0b1110u);
  EXPECT_EQ(NovelBits(0b1110, 0b1110), 0u);
}

TEST(SortedVectorTest, ContainsAndSortUnique) {
  std::vector<int> v{5, 3, 3, 1, 5};
  SortUnique(v);
  EXPECT_EQ(v, (std::vector<int>{1, 3, 5}));
  EXPECT_TRUE(SortedContains(v, 3));
  EXPECT_FALSE(SortedContains(v, 4));
}

TEST(SortedVectorTest, SetOperations) {
  const std::vector<int> a{1, 2, 4, 6};
  const std::vector<int> b{2, 3, 6, 9};
  EXPECT_EQ(SortedIntersectionSize(a, b), 2u);
  EXPECT_EQ(SortedIntersection(a, b), (std::vector<int>{2, 6}));
  EXPECT_EQ(SortedUnion(a, b), (std::vector<int>{1, 2, 3, 4, 6, 9}));
  EXPECT_TRUE(SortedIntersects(a, b));
  EXPECT_FALSE(SortedIntersects(a, std::vector<int>{3, 5, 7}));
  EXPECT_FALSE(SortedIntersects(a, std::vector<int>{}));
}

TEST(SummaryStatsTest, BasicMoments) {
  SummaryStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-9);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryStatsTest, EmptyIsZero) {
  SummaryStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

}  // namespace
}  // namespace ktg
