// Copyright (c) 2026 The ktg Authors.
// TopNCollector tests: fill semantics, strict-improvement updates and the
// pruning threshold of Theorem 2.

#include <gtest/gtest.h>

#include "core/topn.h"

namespace ktg {
namespace {

Group MakeGroup(std::vector<VertexId> members, CoverMask mask) {
  Group g;
  g.members = std::move(members);
  g.mask = mask;
  return g;
}

TEST(TopNCollectorTest, FillsUpToN) {
  TopNCollector c(2);
  EXPECT_FALSE(c.full());
  EXPECT_EQ(c.threshold(), -1);
  EXPECT_TRUE(c.Offer(MakeGroup({1, 2}, 0b1)));
  EXPECT_FALSE(c.full());
  EXPECT_TRUE(c.Offer(MakeGroup({3, 4}, 0b11)));
  EXPECT_TRUE(c.full());
  EXPECT_EQ(c.threshold(), 1);  // worst held coverage
}

TEST(TopNCollectorTest, EqualCoverageCannotUpdateWhenFull) {
  // Mirrors the paper's worked example: later groups with the same coverage
  // "can not update the result groups".
  TopNCollector c(2);
  c.Offer(MakeGroup({1, 2}, 0b1111));
  c.Offer(MakeGroup({1, 3}, 0b1111));
  EXPECT_FALSE(c.Offer(MakeGroup({1, 4}, 0b1111)));
  const auto groups = c.Take();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].members, (std::vector<VertexId>{1, 2}));
  EXPECT_EQ(groups[1].members, (std::vector<VertexId>{1, 3}));
}

TEST(TopNCollectorTest, StrictlyBetterEvictsWorst) {
  TopNCollector c(2);
  c.Offer(MakeGroup({1}, 0b1));
  c.Offer(MakeGroup({2}, 0b111));
  EXPECT_TRUE(c.Offer(MakeGroup({3}, 0b11)));
  const auto groups = c.Take();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].covered(), 3);
  EXPECT_EQ(groups[1].covered(), 2);
}

TEST(TopNCollectorTest, FinalMultisetIsNLargest) {
  // Regardless of offer order, the surviving coverage counts are the N
  // largest.
  const std::vector<int> counts = {1, 4, 2, 4, 5, 3, 2};
  std::vector<std::vector<int>> orders = {
      {0, 1, 2, 3, 4, 5, 6}, {6, 5, 4, 3, 2, 1, 0}, {4, 0, 6, 1, 5, 2, 3}};
  for (const auto& order : orders) {
    TopNCollector c(3);
    for (const int i : order) {
      c.Offer(MakeGroup({static_cast<VertexId>(i)}, LowBits(counts[i])));
    }
    auto groups = c.Take();
    ASSERT_EQ(groups.size(), 3u);
    EXPECT_EQ(groups[0].covered(), 5);
    EXPECT_EQ(groups[1].covered(), 4);
    EXPECT_EQ(groups[2].covered(), 4);
  }
}

TEST(TopNCollectorTest, TakeOrdersByCoverageThenDiscovery) {
  TopNCollector c(4);
  c.Offer(MakeGroup({1}, 0b1));
  c.Offer(MakeGroup({2}, 0b111));
  c.Offer(MakeGroup({3}, 0b11));
  c.Offer(MakeGroup({4}, 0b111));
  const auto groups = c.Take();
  ASSERT_EQ(groups.size(), 4u);
  EXPECT_EQ(groups[0].members, (std::vector<VertexId>{2}));
  EXPECT_EQ(groups[1].members, (std::vector<VertexId>{4}));
  EXPECT_EQ(groups[2].members, (std::vector<VertexId>{3}));
  EXPECT_EQ(groups[3].members, (std::vector<VertexId>{1}));
}

TEST(TopNCollectorTest, TakeResetsCollector) {
  TopNCollector c(1);
  c.Offer(MakeGroup({1}, 0b1));
  EXPECT_EQ(c.Take().size(), 1u);
  EXPECT_EQ(c.size(), 0u);
  EXPECT_FALSE(c.full());
  c.Offer(MakeGroup({2}, 0b1));
  EXPECT_EQ(c.size(), 1u);
}

}  // namespace
}  // namespace ktg
