// Copyright (c) 2026 The ktg Authors.
// Dense k-hop bitmap checker tests.

#include <gtest/gtest.h>

#include "datagen/generators.h"
#include "index/khop_bitmap.h"
#include "util/rng.h"

namespace ktg {
namespace {

TEST(KHopBitmapTest, PathGraph) {
  const Graph g = PathGraph(12);
  KHopBitmapChecker idx(g, 3);
  EXPECT_EQ(idx.built_k(), 3);
  EXPECT_FALSE(idx.IsFartherThan(0, 3, 3));
  EXPECT_TRUE(idx.IsFartherThan(0, 4, 3));
  EXPECT_FALSE(idx.IsFartherThan(5, 5, 3));
  EXPECT_FALSE(idx.IsFartherThan(7, 6, 3));
}

TEST(KHopBitmapTest, DisconnectedIsFarther) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  KHopBitmapChecker idx(b.Build(), 2);
  EXPECT_TRUE(idx.IsFartherThan(0, 3, 2));
  EXPECT_TRUE(idx.IsFartherThan(2, 3, 2));
}

TEST(KHopBitmapTest, MemoryIsDenseQuadratic) {
  Rng rng(81);
  const Graph g = BarabasiAlbert(130, 3, rng);
  KHopBitmapChecker idx(g, 2);
  // 130 rows of ceil(130/64) = 3 words.
  EXPECT_EQ(idx.MemoryBytes(), 130u * 3u * sizeof(uint64_t));
}

TEST(KHopBitmapDeathTest, WrongKIsFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Graph g = PathGraph(5);
  KHopBitmapChecker idx(g, 2);
  EXPECT_DEATH(idx.IsFartherThan(0, 1, 3), "different k");
}

}  // namespace
}  // namespace ktg
