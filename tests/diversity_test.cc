// Copyright (c) 2026 The ktg Authors.
// Diversity-function tests (Equations 2-4), including the paper's two
// worked dL values from Example 3.

#include <gtest/gtest.h>

#include "core/diversity.h"

namespace ktg {
namespace {

Group MakeGroup(std::vector<VertexId> members, CoverMask mask = 0) {
  Group g;
  g.members = std::move(members);
  g.mask = mask;
  return g;
}

TEST(DiversityTest, JaccardBasics) {
  const Group a = MakeGroup({1, 2, 3});
  const Group b = MakeGroup({1, 2, 3});
  const Group c = MakeGroup({4, 5, 6});
  EXPECT_DOUBLE_EQ(GroupJaccardDistance(a, b), 0.0);
  EXPECT_DOUBLE_EQ(GroupJaccardDistance(a, c), 1.0);
}

TEST(DiversityTest, PaperExampleValues) {
  // Example 3: {u10, u5, u1} vs {u10, u5, u2} -> dL = (4-2)/4 = 0.5.
  const Group g1 = MakeGroup({1, 5, 10});
  const Group g2 = MakeGroup({2, 5, 10});
  EXPECT_DOUBLE_EQ(GroupJaccardDistance(g1, g2), 0.5);
  // {u10, u5, u1} vs {u11, u7, u2} -> dL = (6-0)/6 = 1.
  const Group g3 = MakeGroup({2, 7, 11});
  EXPECT_DOUBLE_EQ(GroupJaccardDistance(g1, g3), 1.0);
}

TEST(DiversityTest, PartialOverlap) {
  const Group a = MakeGroup({1, 2});
  const Group b = MakeGroup({2, 3, 4});
  // union 4, intersection 1 -> 3/4.
  EXPECT_DOUBLE_EQ(GroupJaccardDistance(a, b), 0.75);
}

TEST(DiversityTest, AverageDiversitySmallSets) {
  EXPECT_DOUBLE_EQ(AverageDiversity({}), 1.0);
  const Group a = MakeGroup({1, 2});
  EXPECT_DOUBLE_EQ(AverageDiversity(std::vector<Group>{a}), 1.0);
}

TEST(DiversityTest, AverageDiversityIsMeanOverPairs) {
  const std::vector<Group> groups = {
      MakeGroup({1, 2}), MakeGroup({1, 3}), MakeGroup({4, 5})};
  // d(0,1) = (4-2... members {1,2} vs {1,3}: union 3, inter 1 -> 2/3.
  // d(0,2) = 1, d(1,2) = 1.
  EXPECT_NEAR(AverageDiversity(groups), (2.0 / 3.0 + 1.0 + 1.0) / 3.0, 1e-12);
}

TEST(DiversityTest, ScoreBlendsCoverageAndDiversity) {
  // Two disjoint groups, both covering 2 of 4 keywords.
  const std::vector<Group> groups = {MakeGroup({1, 2}, 0b0011),
                                     MakeGroup({3, 4}, 0b1100)};
  EXPECT_DOUBLE_EQ(DktgScore(groups, 4, 1.0), 0.5);   // pure coverage
  EXPECT_DOUBLE_EQ(DktgScore(groups, 4, 0.0), 1.0);   // pure diversity
  EXPECT_DOUBLE_EQ(DktgScore(groups, 4, 0.5), 0.75);  // blend
}

TEST(DiversityTest, ScoreUsesMinCoverage) {
  const std::vector<Group> groups = {MakeGroup({1, 2}, 0b1111),
                                     MakeGroup({3, 4}, 0b0001)};
  // min coverage = 1/4; diversity = 1.
  EXPECT_DOUBLE_EQ(DktgScore(groups, 4, 0.5), 0.5 * 0.25 + 0.5 * 1.0);
}

TEST(DiversityTest, EmptySetScoresZero) {
  EXPECT_DOUBLE_EQ(DktgScore({}, 5, 0.5), 0.0);
}

}  // namespace
}  // namespace ktg
