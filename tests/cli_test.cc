// Copyright (c) 2026 The ktg Authors.
// CLI tests: the flag parser and each command end-to-end against temp
// files (generate → stats → build-index → query round trip).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "cli/args.h"
#include "cli/commands.h"
#include "obs/schema_check.h"

namespace ktg::cli {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

Result<Args> ParseFor(std::vector<std::string> argv) {
  static const std::vector<std::string> kFlags = {
      "preset", "scale", "edges", "attrs", "out",  "kind", "keywords",
      "p",      "k",     "n",     "algo",  "flag", "x"};
  return Args::Parse(argv, kFlags);
}

TEST(ArgsTest, ParsesCommandAndFlags) {
  auto args = ParseFor({"query", "--edges", "g.txt", "--p", "3",
                        "--keywords=a,b", "--flag"});
  ASSERT_TRUE(args.ok()) << args.status().ToString();
  EXPECT_EQ(args->command(), "query");
  EXPECT_EQ(args->GetString("edges"), "g.txt");
  EXPECT_EQ(args->GetInt("p", 0).value(), 3);
  EXPECT_EQ(args->GetList("keywords"),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(args->GetBool("flag"));
  EXPECT_FALSE(args->GetBool("absent"));
}

TEST(ArgsTest, RejectsUnknownFlag) {
  const auto args = ParseFor({"query", "--bogus", "1"});
  ASSERT_FALSE(args.ok());
  EXPECT_EQ(args.status().code(), StatusCode::kInvalidArgument);
}

TEST(ArgsTest, RejectsStrayPositional) {
  const auto args = ParseFor({"query", "extra"});
  ASSERT_FALSE(args.ok());
}

TEST(ArgsTest, TypedGetterErrors) {
  auto args = ParseFor({"query", "--p", "three", "--scale", "fast"});
  ASSERT_TRUE(args.ok());
  EXPECT_FALSE(args->GetInt("p", 0).ok());
  EXPECT_FALSE(args->GetDouble("scale", 0).ok());
  EXPECT_EQ(args->GetInt("k", 7).value(), 7);  // default path
}

TEST(ArgsTest, DefaultsAndEmptyList) {
  auto args = ParseFor({"stats"});
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args->GetString("edges", "fallback"), "fallback");
  EXPECT_TRUE(args->GetList("keywords").empty());
}

TEST(ArgsTest, BoolSpellings) {
  auto args = ParseFor({"q1", "--flag", "false"});
  // "q1" command then --flag false.
  ASSERT_TRUE(args.ok());
  EXPECT_FALSE(args->GetBool("flag", true));
}

TEST(ArgsTest, IntOverflowIsAnErrorNotSaturation) {
  auto args = ParseFor({"q", "--p", "99999999999999999999999"});
  ASSERT_TRUE(args.ok());
  const auto v = args->GetInt("p", 0);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.status().message().find("out of range"), std::string::npos);
}

TEST(ArgsTest, DoubleOverflowIsAnError) {
  auto args = ParseFor({"q", "--scale", "1e999"});
  ASSERT_TRUE(args.ok());
  const auto v = args->GetDouble("scale", 0);
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.status().message().find("out of range"), std::string::npos);
}

TEST(ArgsTest, PartialNumbersAreRejected) {
  auto args = ParseFor({"q", "--p", "3x", "--scale", "1.5abc"});
  ASSERT_TRUE(args.ok());
  EXPECT_FALSE(args->GetInt("p", 0).ok());
  EXPECT_FALSE(args->GetDouble("scale", 0).ok());
}

TEST(ArgsTest, CheckExclusiveFlagPairs) {
  auto both = ParseFor({"q", "--preset", "dblp", "--edges", "g.txt"});
  ASSERT_TRUE(both.ok());
  const Status st = both->CheckExclusive("preset", "edges");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("mutually exclusive"), std::string::npos);

  auto one = ParseFor({"q", "--preset", "dblp"});
  ASSERT_TRUE(one.ok());
  EXPECT_TRUE(one->CheckExclusive("preset", "edges").ok());
  auto neither = ParseFor({"q"});
  ASSERT_TRUE(neither.ok());
  EXPECT_TRUE(neither->CheckExclusive("preset", "edges").ok());
}

class CliCommandTest : public ::testing::Test {
 protected:
  void SetUp() override {
    edges_ = TempPath("ktg_cli_edges.txt");
    attrs_ = TempPath("ktg_cli_attrs.txt");
    index_ = TempPath("ktg_cli.idx");
    // Generate a tiny dataset once.
    const auto args = Args::Parse(
        {"generate", "--preset", "brightkite", "--scale", "0.02", "--edges",
         edges_, "--attrs", attrs_},
        {"preset", "scale", "edges", "attrs"});
    ASSERT_TRUE(args.ok());
    ASSERT_TRUE(CmdGenerate(*args).ok());
  }
  void TearDown() override {
    std::remove(edges_.c_str());
    std::remove(attrs_.c_str());
    std::remove(index_.c_str());
  }

  std::string edges_, attrs_, index_;
};

TEST_F(CliCommandTest, StatsRuns) {
  const auto args =
      Args::Parse({"stats", "--edges", edges_, "--attrs", attrs_},
                  {"edges", "attrs"});
  ASSERT_TRUE(args.ok());
  EXPECT_TRUE(CmdStats(*args).ok());
}

TEST_F(CliCommandTest, StatsMissingEdgesFails) {
  const auto args = Args::Parse({"stats"}, {"edges"});
  ASSERT_TRUE(args.ok());
  EXPECT_FALSE(CmdStats(*args).ok());
}

TEST_F(CliCommandTest, BuildIndexAndQueryViaIndex) {
  {
    const auto args = Args::Parse(
        {"build-index", "--edges", edges_, "--kind", "nlrnl", "--out",
         index_},
        {"edges", "kind", "out"});
    ASSERT_TRUE(args.ok());
    ASSERT_TRUE(CmdBuildIndex(*args).ok());
  }
  {
    const auto args = Args::Parse(
        {"query", "--edges", edges_, "--attrs", attrs_, "--index", index_,
         "--keywords", "kw0,kw1,kw2", "--p", "2", "--k", "1", "--n", "2"},
        {"edges", "attrs", "index", "keywords", "p", "k", "n"});
    ASSERT_TRUE(args.ok());
    EXPECT_TRUE(CmdQuery(*args).ok());
  }
}

TEST_F(CliCommandTest, QueryAllAlgorithms) {
  for (const std::string algo :
       {"vkc-deg", "vkc", "qkc", "greedy", "dktg", "tagq"}) {
    const auto args = Args::Parse(
        {"query", "--edges", edges_, "--attrs", attrs_, "--checker", "bfs",
         "--keywords", "kw0,kw1,kw2,kw3", "--p", "2", "--k", "1", "--algo",
         algo},
        {"edges", "attrs", "checker", "keywords", "p", "k", "algo"});
    ASSERT_TRUE(args.ok());
    EXPECT_TRUE(CmdQuery(*args).ok()) << algo;
  }
}

TEST_F(CliCommandTest, QueryRejectsBadAlgo) {
  const auto args = Args::Parse(
      {"query", "--edges", edges_, "--attrs", attrs_, "--keywords", "kw0",
       "--algo", "quantum"},
      {"edges", "attrs", "keywords", "algo"});
  ASSERT_TRUE(args.ok());
  EXPECT_FALSE(CmdQuery(*args).ok());
}

TEST_F(CliCommandTest, QueryRequiresKeywords) {
  const auto args =
      Args::Parse({"query", "--edges", edges_, "--attrs", attrs_},
                  {"edges", "attrs"});
  ASSERT_TRUE(args.ok());
  EXPECT_FALSE(CmdQuery(*args).ok());
}

TEST_F(CliCommandTest, WorkloadRuns) {
  const auto args = Args::Parse(
      {"workload", "--preset", "brightkite", "--scale", "0.02", "--queries",
       "3", "--p", "3", "--checker", "bfs"},
      {"preset", "scale", "queries", "p", "checker"});
  ASSERT_TRUE(args.ok());
  EXPECT_TRUE(CmdWorkload(*args).ok());
}

TEST_F(CliCommandTest, WorkloadRunsThreaded) {
  const auto args = Args::Parse(
      {"workload", "--preset", "brightkite", "--scale", "0.02", "--queries",
       "6", "--p", "3", "--checker", "bfs", "--threads", "3"},
      {"preset", "scale", "queries", "p", "checker", "threads"});
  ASSERT_TRUE(args.ok());
  EXPECT_TRUE(CmdWorkload(*args).ok());
}

TEST_F(CliCommandTest, QueryJsonOutput) {
  const auto args = Args::Parse(
      {"query", "--edges", edges_, "--attrs", attrs_, "--checker", "bfs",
       "--keywords", "kw0,kw1,kw2", "--p", "2", "--k", "1", "--json"},
      {"edges", "attrs", "checker", "keywords", "p", "k", "json"});
  ASSERT_TRUE(args.ok());
  EXPECT_TRUE(CmdQuery(*args).ok());
}

TEST_F(CliCommandTest, QueryMetricsJsonSidecar) {
  const std::string metrics = TempPath("ktg_cli_metrics.json");
  const auto args = Args::Parse(
      {"query", "--edges", edges_, "--attrs", attrs_, "--checker", "bfs",
       "--keywords", "kw0,kw1,kw2", "--p", "2", "--k", "1", "--metrics-json",
       metrics, "--trace"},
      {"edges", "attrs", "checker", "keywords", "p", "k", "metrics-json",
       "trace"});
  ASSERT_TRUE(args.ok());
  ASSERT_TRUE(CmdQuery(*args).ok());

  std::ifstream in(metrics);
  ASSERT_TRUE(in.good()) << metrics;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  // Golden schema check: the ktg.metrics.v1 shape with engine counters,
  // per-phase histograms and per-checker detail stats all present.
  for (const char* needle :
       {"\"schema\":\"ktg.metrics.v1\"", "\"counters\":", "\"gauges\":",
        "\"histograms\":", "\"engine.queries\":1", "\"engine.candidates\":",
        "\"engine.nodes_expanded\":", "\"engine.prune.keyword\":",
        "\"engine.prune.kline\":", "\"engine.distance_checks\":",
        "\"checker.BFS.checks\":", "\"checker.BFS.farther\":",
        "\"engine.query_ms\":", "\"phase.candidate_gen_ms\":",
        "\"phase.bb_search_ms\":", "\"p50\":", "\"p99\":"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle << "\n" << json;
  }
  // Structural validation on top of the substring goldens.
  const auto problems = ktg::obs::CheckMetricsV1(json);
  EXPECT_TRUE(problems.empty()) << problems.front();
  std::remove(metrics.c_str());
}

TEST(CliMainTest, DispatchAndExitCodes) {
  EXPECT_EQ(RunMain({"help"}), 0);
  EXPECT_EQ(RunMain({}), 2);
  EXPECT_EQ(RunMain({"frobnicate"}), 2);
  EXPECT_EQ(RunMain({"stats", "--bogus-flag", "1"}), 2);
  EXPECT_EQ(RunMain({"stats", "--edges", "/nonexistent/zz.txt"}), 1);
  EXPECT_FALSE(UsageText().empty());
}

TEST(CliMainTest, RegistryCoversEveryCommand) {
  for (const char* name :
       {"generate", "stats", "build-index", "query", "workload", "serve",
        "loadgen"}) {
    const CommandSpec* spec = FindCommand(name);
    ASSERT_NE(spec, nullptr) << name;
    EXPECT_EQ(spec->name, name);
    EXPECT_NE(spec->fn, nullptr);
    EXPECT_FALSE(spec->flags.empty()) << name;
    // Every registered command appears in the usage text.
    EXPECT_NE(UsageText().find("  " + spec->name), std::string::npos) << name;
  }
  EXPECT_EQ(FindCommand("help"), nullptr);  // built-in, not a registry entry
  EXPECT_EQ(FindCommand("frobnicate"), nullptr);
}

TEST(CliMainTest, FlagsAreValidatedPerCommand) {
  // --keywords belongs to query, not stats: resolving the command first
  // and parsing against its own flag list must fail loudly.
  EXPECT_EQ(RunMain({"stats", "--keywords", "a,b"}), 2);
  // --port belongs to serve/loadgen, not workload.
  EXPECT_EQ(RunMain({"workload", "--port", "1"}), 2);
}

TEST(CliMainTest, LoadgenValidatesPortFlags) {
  // No port at all.
  EXPECT_EQ(RunMain({"loadgen"}), 1);
  // Mutually exclusive port sources.
  EXPECT_EQ(RunMain({"loadgen", "--port", "1", "--port-file", "/tmp/x"}), 1);
  // Out-of-range port.
  EXPECT_EQ(RunMain({"loadgen", "--port", "70000"}), 1);
}

}  // namespace
}  // namespace ktg::cli
