// Copyright (c) 2026 The ktg Authors.
// Small cross-cutting behaviours not covered elsewhere: factory parsing,
// enum names, move-only Result payloads, stats counters and display
// helpers.

#include <gtest/gtest.h>

#include <memory>

#include "core/ktg_engine.h"
#include "core/paper_example.h"
#include "datagen/generators.h"
#include "graph/stats.h"
#include "index/bfs_checker.h"
#include "index/checker_factory.h"
#include "keywords/inverted_index.h"

namespace ktg {
namespace {

TEST(CheckerFactoryTest, ParsesAllSpellings) {
  EXPECT_EQ(ParseCheckerKind("bfs").value(), CheckerKind::kBfs);
  EXPECT_EQ(ParseCheckerKind("BFS").value(), CheckerKind::kBfs);
  EXPECT_EQ(ParseCheckerKind("nl").value(), CheckerKind::kNl);
  EXPECT_EQ(ParseCheckerKind("NLRNL").value(), CheckerKind::kNlrnl);
  EXPECT_EQ(ParseCheckerKind("bitmap").value(), CheckerKind::kKHopBitmap);
  EXPECT_EQ(ParseCheckerKind("KHopBitmap").value(), CheckerKind::kKHopBitmap);
  EXPECT_FALSE(ParseCheckerKind("btree").ok());
}

TEST(CheckerFactoryTest, BuildsEveryKind) {
  const Graph g = CycleGraph(10);
  for (const auto kind : {CheckerKind::kBfs, CheckerKind::kNl,
                          CheckerKind::kNlrnl, CheckerKind::kKHopBitmap}) {
    const auto checker = MakeChecker(kind, g, 2);
    ASSERT_NE(checker, nullptr);
    EXPECT_EQ(checker->name(), CheckerKindName(kind));
    EXPECT_TRUE(checker->IsFartherThan(0, 5, 2));
    EXPECT_FALSE(checker->IsFartherThan(0, 2, 2));
  }
}

TEST(EnumNamesTest, SortStrategyNames) {
  EXPECT_STREQ(SortStrategyName(SortStrategy::kQkc), "QKC");
  EXPECT_STREQ(SortStrategyName(SortStrategy::kVkc), "VKC");
  EXPECT_STREQ(SortStrategyName(SortStrategy::kVkcDeg), "VKC-DEG");
}

TEST(ResultTest, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(9));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 9);
}

TEST(StatsCountersTest, PruneCountersFireWhenCollectorFull) {
  const AttributedGraph g = PaperExampleGraph();
  const InvertedIndex idx(g);
  BfsChecker checker(g.graph());
  KtgQuery q = PaperExampleQuery(g);
  q.top_n = 1;  // fills instantly, so pruning has a threshold to use
  const auto r = RunKtg(g, idx, checker, q);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->stats.keyword_prunes, 0u);
  EXPECT_GT(r->stats.kline_filtered, 0u);
}

TEST(StatsCountersTest, SearchStatsAccumulate) {
  SearchStats a;
  a.nodes_expanded = 3;
  a.distance_checks = 10;
  a.elapsed_ms = 1.5;
  a.cpu_ms = 1.5;
  a.phases[obs::Phase::kBbSearch] = 1.0;
  SearchStats b;
  b.nodes_expanded = 4;
  b.distance_checks = 5;
  b.elapsed_ms = 0.5;
  b.cpu_ms = 0.5;
  b.phases[obs::Phase::kBbSearch] = 0.25;
  a += b;
  EXPECT_EQ(a.nodes_expanded, 7u);
  EXPECT_EQ(a.distance_checks, 15u);
  // Wall-clock merges by max (concurrent measurements overlap); compute
  // time and phase attribution merge additively.
  EXPECT_DOUBLE_EQ(a.elapsed_ms, 1.5);
  EXPECT_DOUBLE_EQ(a.cpu_ms, 2.0);
  EXPECT_DOUBLE_EQ(a.phases[obs::Phase::kBbSearch], 1.25);
}

TEST(GraphStatsTest, ToStringMentionsEveryField) {
  Rng rng(0x7777);
  const auto s = ComputeGraphStats(CycleGraph(12), rng, 4);
  const std::string text = s.ToString();
  for (const char* needle : {"n=12", "m=12", "components=1"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << text;
  }
}

TEST(QueryHelpersTest, MakeQueryMapsTermsAndUnknowns) {
  const AttributedGraph g = PaperExampleGraph();
  const std::string terms[] = {"SN", "nope", "GD"};
  const KtgQuery q = MakeQuery(g, terms, 2, 1, 3);
  ASSERT_EQ(q.keywords.size(), 3u);
  EXPECT_EQ(q.keywords[0], g.vocabulary().Find("SN"));
  EXPECT_EQ(q.keywords[1], kInvalidKeyword);
  EXPECT_EQ(q.keywords[2], g.vocabulary().Find("GD"));
  EXPECT_EQ(q.group_size, 2u);
  EXPECT_EQ(q.tenuity, 1);
  EXPECT_EQ(q.top_n, 3u);
}

TEST(QueryHelpersTest, BestCoverageOfEmptyResult) {
  KtgResult r;
  EXPECT_DOUBLE_EQ(r.best_coverage(), 0.0);
  EXPECT_TRUE(r.empty());
}

}  // namespace
}  // namespace ktg
