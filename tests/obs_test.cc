// Copyright (c) 2026 The ktg Authors.
// Observability layer: metrics registry (including exactness under the
// thread pool — run under `ctest -L tsan` with KTG_SANITIZE=thread),
// phase-timer nesting, the query-trace ring, and the engine wiring that
// mirrors SearchStats into a registry.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/ktg_engine.h"
#include "core/obs_bridge.h"
#include "core/paper_example.h"
#include "index/bfs_checker.h"
#include "index/checker_factory.h"
#include "keywords/inverted_index.h"
#include "obs/metrics.h"
#include "obs/phase_timer.h"
#include "obs/phases.h"
#include "obs/schema_check.h"
#include "obs/query_trace.h"
#include "util/thread_pool.h"

namespace ktg::obs {
namespace {

TEST(MetricsRegistryTest, CountersGaugesHistograms) {
  MetricsRegistry reg;
  reg.counter("c").Add();
  reg.counter("c").Add(4);
  EXPECT_EQ(reg.counter("c").value(), 5u);
  EXPECT_EQ(reg.CounterValue("c"), 5u);
  EXPECT_EQ(reg.CounterValue("never_touched"), 0u);

  reg.gauge("g").Set(2.5);
  reg.gauge("g").Set(-1.0);  // last write wins
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), -1.0);

  Histogram& h = reg.histogram("h");
  h.Record(1.0);
  h.Record(2.0);
  h.Record(4.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 7.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  // Log-scale estimate: p50 must land within a factor sqrt(2) of the true
  // median (2.0).
  const double p50 = h.Quantile(0.5);
  EXPECT_GT(p50, 2.0 / 1.5);
  EXPECT_LT(p50, 2.0 * 1.5);
}

TEST(MetricsRegistryTest, StableAddressesAcrossInserts) {
  MetricsRegistry reg;
  Counter& first = reg.counter("first");
  for (int i = 0; i < 100; ++i) {
    reg.counter("filler_" + std::to_string(i)).Add();
  }
  EXPECT_EQ(&first, &reg.counter("first"));
}

TEST(MetricsRegistryTest, CountersExactUnderThreadPool) {
  MetricsRegistry reg;
  constexpr uint32_t kWorkers = 8;
  constexpr uint64_t kPerWorker = 20'000;
  Counter& shared = reg.counter("shared");
  Histogram& hist = reg.histogram("latency");
  ThreadPool pool(kWorkers);
  for (uint32_t w = 0; w < kWorkers; ++w) {
    pool.Submit([&reg, &shared, &hist, w] {
      for (uint64_t i = 0; i < kPerWorker; ++i) {
        shared.Add();
        hist.Record(static_cast<double>(w) + 1.0);
        // Lookup path raced too: every worker also resolves by name.
        reg.counter("by_name").Add();
      }
      reg.gauge("last_worker").Set(static_cast<double>(w));
    });
  }
  pool.Wait();
  EXPECT_EQ(shared.value(), kWorkers * kPerWorker);
  EXPECT_EQ(reg.CounterValue("by_name"), kWorkers * kPerWorker);
  EXPECT_EQ(hist.count(), kWorkers * kPerWorker);
  EXPECT_DOUBLE_EQ(hist.min(), 1.0);
  EXPECT_DOUBLE_EQ(hist.max(), static_cast<double>(kWorkers));
}

TEST(MetricsRegistryTest, JsonSchema) {
  MetricsRegistry reg;
  reg.counter("engine.queries").Add();
  reg.gauge("threads").Set(4);
  reg.histogram("query_ms").Record(1.25);
  const std::string json = reg.ToJson();
  for (const char* needle :
       {"\"schema\":\"ktg.metrics.v1\"", "\"counters\":", "\"gauges\":",
        "\"histograms\":", "\"engine.queries\":1", "\"threads\":4",
        "\"query_ms\":", "\"count\":1", "\"p50\":", "\"p99\":", "\"sum\":"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle << "\n" << json;
  }
  const auto problems = ktg::obs::CheckMetricsV1(json);
  EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST(PhaseTimerTest, NullSinkIsNoOp) {
  PhaseTimer timer(nullptr, Phase::kBbSearch);
  timer.Stop();  // must not crash or touch anything
}

TEST(PhaseTimerTest, NestedTimersAttributeToBoth) {
  PhaseBreakdown sink;
  {
    PhaseTimer outer(&sink, Phase::kBbSearch);
    {
      PhaseTimer inner(&sink, Phase::kKlineFilter);
      // Spin until some measurable time passes.
      Stopwatch w;
      while (w.ElapsedMillis() < 1.0) {
      }
    }
  }
  EXPECT_GT(sink[Phase::kKlineFilter], 0.0);
  // Sub-phase semantics: the outer scope contains the inner one.
  EXPECT_GE(sink[Phase::kBbSearch], sink[Phase::kKlineFilter]);
  EXPECT_DOUBLE_EQ(sink[Phase::kCandidateGen], 0.0);
}

TEST(PhaseTimerTest, StopIsIdempotentAndEarly) {
  PhaseBreakdown sink;
  PhaseTimer timer(&sink, Phase::kTopNMerge);
  timer.Stop();
  const double after_first = sink[Phase::kTopNMerge];
  Stopwatch w;
  while (w.ElapsedMillis() < 1.0) {
  }
  timer.Stop();  // second Stop (and the destructor later) add nothing
  EXPECT_DOUBLE_EQ(sink[Phase::kTopNMerge], after_first);
}

TEST(PhaseBreakdownTest, TopLevelTotalExcludesSubPhase) {
  PhaseBreakdown b;
  b[Phase::kCandidateGen] = 1.0;
  b[Phase::kBbSearch] = 2.0;
  b[Phase::kKlineFilter] = 1.5;  // inside kBbSearch, not double-counted
  b[Phase::kTopNMerge] = 0.5;
  EXPECT_DOUBLE_EQ(b.TopLevelTotalMs(), 3.5);
}

TEST(PhaseNamesTest, EveryPhaseHasAName) {
  for (int i = 0; i < kNumPhases; ++i) {
    const char* name = PhaseName(static_cast<Phase>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
  }
}

TEST(QueryTraceTest, RecordsInOrder) {
  QueryTrace trace(8);
  trace.Record(TraceEventKind::kExpand, 1, 10, 5);
  trace.Record(TraceEventKind::kOffer, 2, 11, 3);
  const auto events = trace.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kExpand);
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_EQ(events[0].vertex, 10u);
  EXPECT_EQ(events[0].detail, 5);
  EXPECT_EQ(events[1].kind, TraceEventKind::kOffer);
  EXPECT_GE(events[1].t_ms, events[0].t_ms);
  EXPECT_EQ(trace.total_recorded(), 2u);
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(QueryTraceTest, RingKeepsTheTail) {
  QueryTrace trace(4);
  for (int i = 0; i < 10; ++i) {
    trace.Record(TraceEventKind::kNote, 0, 0, i);
  }
  EXPECT_EQ(trace.total_recorded(), 10u);
  EXPECT_EQ(trace.dropped(), 6u);
  const auto events = trace.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first snapshot of the newest 4 events.
  EXPECT_EQ(events[0].detail, 6);
  EXPECT_EQ(events[3].detail, 9);
}

TEST(QueryTraceTest, ClearRestarts) {
  QueryTrace trace(4);
  trace.Record(TraceEventKind::kNote, 0, 0, 1);
  trace.Clear();
  EXPECT_EQ(trace.total_recorded(), 0u);
  EXPECT_TRUE(trace.Snapshot().empty());
}

TEST(QueryTraceTest, JsonSchema) {
  QueryTrace trace(16);
  trace.Record(TraceEventKind::kKeywordPrune, 2, 7, 42);
  const std::string json = trace.ToJson();
  for (const char* needle :
       {"\"schema\":\"ktg.trace.v1\"", "\"capacity\":16", "\"recorded\":1",
        "\"dropped\":0", "\"events\":", "\"kind\":\"keyword_prune\"",
        "\"depth\":2", "\"vertex\":7", "\"detail\":42"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle << "\n" << json;
  }
  const auto problems = ktg::obs::CheckTraceV1(json);
  EXPECT_TRUE(problems.empty()) << problems.front();
}

// The engine wiring: counters flushed into an attached registry must agree
// exactly with the SearchStats the engine returns, and an attached trace
// must narrate the search.
TEST(ObsWiringTest, RegistryMatchesSearchStats) {
  const AttributedGraph g = PaperExampleGraph();
  const InvertedIndex idx(g);
  BfsChecker checker(g.graph());
  const KtgQuery q = PaperExampleQuery(g);

  MetricsRegistry reg;
  QueryTrace trace;
  EngineOptions opts;
  opts.metrics = &reg;
  opts.trace = &trace;
  const auto r = RunKtg(g, idx, checker, q, opts);
  ASSERT_TRUE(r.ok());
  const SearchStats& s = r->stats;

  EXPECT_EQ(reg.CounterValue("engine.queries"), 1u);
  EXPECT_EQ(reg.CounterValue("engine.candidates"), s.candidates);
  EXPECT_EQ(reg.CounterValue("engine.nodes_expanded"), s.nodes_expanded);
  EXPECT_EQ(reg.CounterValue("engine.groups_completed"), s.groups_completed);
  EXPECT_EQ(reg.CounterValue("engine.prune.keyword"), s.keyword_prunes);
  EXPECT_EQ(reg.CounterValue("engine.prune.kline"), s.kline_filtered);
  EXPECT_EQ(reg.CounterValue("engine.distance_checks"), s.distance_checks);

  // Detail stats were enabled on attach. BFS answers mostly through the
  // bulk BallWithinK path whose traversals count as checks but toward
  // neither verdict, so farther + within only bounds checks from below.
  EXPECT_LE(reg.CounterValue("checker.BFS.farther") +
                reg.CounterValue("checker.BFS.within"),
            reg.CounterValue("checker.BFS.checks"));
  EXPECT_EQ(reg.CounterValue("checker.BFS.checks"), s.distance_checks);

  // The trace narrates the search: at least one expansion and one offer.
  uint64_t expands = 0, offers = 0;
  for (const auto& e : trace.Snapshot()) {
    expands += e.kind == TraceEventKind::kExpand;
    offers += e.kind == TraceEventKind::kOffer;
  }
  EXPECT_GT(expands, 0u);
  EXPECT_EQ(offers, s.groups_completed);

  // Phase attribution covers the measured wall-clock (same clocks, so the
  // partition can only undershoot by timer overhead).
  EXPECT_GT(s.phases[Phase::kBbSearch], 0.0);
  EXPECT_LE(s.phases.TopLevelTotalMs(), s.elapsed_ms + 0.5);
}

// Per-pair checkers (no bulk path) keep the strict invariant: every check
// lands in exactly one of farther/within, and every check probes the index.
TEST(ObsWiringTest, PerPairCheckerVerdictsPartitionChecks) {
  const AttributedGraph g = PaperExampleGraph();
  const InvertedIndex idx(g);
  const auto checker = MakeChecker(CheckerKind::kNlrnl, g.graph(), 2);
  ASSERT_NE(checker, nullptr);
  const KtgQuery q = PaperExampleQuery(g);

  MetricsRegistry reg;
  EngineOptions opts;
  opts.metrics = &reg;
  const auto r = RunKtg(g, idx, *checker, q, opts);
  ASSERT_TRUE(r.ok());

  const uint64_t checks = reg.CounterValue("checker.NLRNL.checks");
  EXPECT_GT(checks, 0u);
  EXPECT_EQ(reg.CounterValue("checker.NLRNL.farther") +
                reg.CounterValue("checker.NLRNL.within"),
            checks);
  EXPECT_GE(reg.CounterValue("checker.NLRNL.probes"), checks);
}

TEST(ObsWiringTest, DisabledPathRecordsNothing) {
  const AttributedGraph g = PaperExampleGraph();
  const InvertedIndex idx(g);
  BfsChecker checker(g.graph());
  const KtgQuery q = PaperExampleQuery(g);
  const auto r = RunKtg(g, idx, checker, q);  // no registry, no trace
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(checker.detail_stats_enabled());
  EXPECT_EQ(checker.num_farther(), 0u);
  EXPECT_EQ(checker.num_within(), 0u);
  // Top-level phases still measured (they are plain Stopwatch reads on
  // cold paths), but per-node k-line timing stays off.
  EXPECT_DOUBLE_EQ(r->stats.phases[Phase::kKlineFilter], 0.0);
}

}  // namespace
}  // namespace ktg::obs
