// Copyright (c) 2026 The ktg Authors.
// Dataset generator tests: determinism, degree/connectivity shape of each
// family, keyword assignment and the named presets.

#include <gtest/gtest.h>

#include <cmath>

#include "datagen/generators.h"
#include "datagen/keyword_assigner.h"
#include "datagen/presets.h"
#include "graph/bfs.h"
#include "graph/stats.h"
#include "util/sorted_vector.h"

namespace ktg {
namespace {

TEST(GeneratorsTest, BarabasiAlbertShape) {
  Rng rng(0xBA);
  const Graph g = BarabasiAlbert(500, 4, rng);
  EXPECT_EQ(g.num_vertices(), 500u);
  // Every non-seed vertex contributes m edges (minus seed-clique overlap).
  EXPECT_NEAR(g.AverageDegree(), 8.0, 1.0);
  // Preferential attachment from a seed clique is connected.
  EXPECT_EQ(ConnectedComponents(g).second, 1u);
  // Heavy tail: max degree far above the average.
  Rng srng(1);
  const auto stats = ComputeGraphStats(g, srng, 0);
  EXPECT_GT(stats.max_degree, 3 * 8);
}

TEST(GeneratorsTest, BarabasiAlbertDeterministic) {
  Rng a(7), b(7);
  EXPECT_EQ(BarabasiAlbert(200, 3, a).EdgeList(),
            BarabasiAlbert(200, 3, b).EdgeList());
}

TEST(GeneratorsTest, ChungLuAverageDegree) {
  Rng rng(0xC1);
  const Graph g = ChungLuPowerLaw(3000, 8.0, 2.5, rng);
  EXPECT_EQ(g.num_vertices(), 3000u);
  EXPECT_NEAR(g.AverageDegree(), 8.0, 1.5);
}

TEST(GeneratorsTest, ErdosRenyiEdgeCount) {
  Rng rng(0xE2);
  const uint32_t n = 400;
  const double p = 0.03;
  const Graph g = ErdosRenyi(n, p, rng);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected,
              5.0 * std::sqrt(expected));
  for (const auto& [u, v] : g.EdgeList()) {
    EXPECT_LT(u, v);
    EXPECT_LT(v, n);
  }
}

TEST(GeneratorsTest, ErdosRenyiExtremes) {
  Rng rng(0xE3);
  EXPECT_EQ(ErdosRenyi(50, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(ErdosRenyi(10, 1.0, rng).num_edges(), 45u);
}

TEST(GeneratorsTest, WattsStrogatzDegree) {
  Rng rng(0x35);
  const Graph g = WattsStrogatz(300, 3, 0.1, rng);
  // Ring lattice contributes exactly 3 edges per vertex before rewiring.
  EXPECT_NEAR(g.AverageDegree(), 6.0, 0.5);
}

TEST(GeneratorsTest, DeterministicShapes) {
  // Path/cycle/grid/tree/complete have exact, known structure.
  EXPECT_EQ(PathGraph(6).num_edges(), 5u);
  EXPECT_EQ(CycleGraph(6).num_edges(), 6u);
  EXPECT_EQ(GridGraph(3, 3).num_edges(), 12u);
  EXPECT_EQ(CompleteGraph(6).num_edges(), 15u);
  const Graph tree = AryTree(13, 3);
  EXPECT_EQ(tree.num_edges(), 12u);
  EXPECT_EQ(ConnectedComponents(tree).second, 1u);
  EXPECT_EQ(HopDistanceBetween(tree, 0, 12), 2);  // root to a leaf layer 2
}

TEST(GeneratorsTest, StochasticBlockModelCommunityStructure) {
  Rng rng(0x5B3);
  const uint32_t n = 300, c = 3;
  const Graph g = StochasticBlockModel(n, c, 0.12, 0.004, rng);
  uint64_t internal = 0, external = 0;
  for (const auto& [u, v] : g.EdgeList()) {
    if (u % c == v % c) {
      ++internal;
    } else {
      ++external;
    }
  }
  // Expected internal ≈ 3 * C(100,2) * 0.12 ≈ 1782; external ≈
  // 3 * 100*100 * 0.004 ≈ 120.
  EXPECT_GT(internal, 8 * external);
  EXPECT_NEAR(static_cast<double>(internal), 1782.0, 300.0);
  EXPECT_NEAR(static_cast<double>(external), 120.0, 60.0);
}

TEST(GeneratorsTest, StochasticBlockModelExtremes) {
  Rng rng(0x5B4);
  EXPECT_EQ(StochasticBlockModel(40, 4, 0.0, 0.0, rng).num_edges(), 0u);
  const Graph full = StochasticBlockModel(20, 2, 1.0, 1.0, rng);
  EXPECT_EQ(full.num_edges(), 190u);
}

TEST(KeywordAssignerTest, CountsWithinRange) {
  Rng rng(0xA1);
  KeywordModel model;
  model.vocabulary_size = 50;
  model.min_per_vertex = 2;
  model.max_per_vertex = 5;
  const AttributedGraph g = AssignKeywords(PathGraph(400), model, rng);
  EXPECT_EQ(g.num_keywords(), 50u);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto kws = g.Keywords(v);
    EXPECT_GE(kws.size(), 2u);
    EXPECT_LE(kws.size(), 5u);
    EXPECT_TRUE(std::is_sorted(kws.begin(), kws.end()));
  }
}

TEST(KeywordAssignerTest, EmptyFraction) {
  Rng rng(0xA2);
  KeywordModel model;
  model.vocabulary_size = 20;
  model.empty_fraction = 0.5;
  const AttributedGraph g = AssignKeywords(PathGraph(1000), model, rng);
  uint32_t empty = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.Keywords(v).empty()) ++empty;
  }
  EXPECT_NEAR(empty, 500u, 60u);
}

TEST(KeywordAssignerTest, ZipfSkewsTowardLowRanks) {
  Rng rng(0xA3);
  KeywordModel model;
  model.vocabulary_size = 100;
  model.zipf_exponent = 1.0;
  const AttributedGraph g = AssignKeywords(PathGraph(2000), model, rng);
  // Popularity of the top keyword dwarfs a mid-tail one.
  uint32_t top = 0, tail = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const KeywordId kw : g.Keywords(v)) {
      if (kw == 0) ++top;
      if (kw == 50) ++tail;
    }
  }
  EXPECT_GT(top, 4 * (tail + 1));
}

TEST(KeywordAssignerTest, HomophilyMakesNeighborsShareKeywords) {
  Rng rng(0xA4);
  KeywordModel base;
  base.vocabulary_size = 400;
  base.min_per_vertex = 3;
  base.max_per_vertex = 5;
  base.zipf_exponent = 0.2;  // near-uniform: random overlap is rare

  KeywordModel homophilous = base;
  homophilous.homophily = 0.6;

  const Graph topo = BarabasiAlbert(800, 4, rng);
  Rng r1(1), r2(1);
  const AttributedGraph plain = AssignKeywords(topo, base, r1);
  const AttributedGraph social = AssignKeywords(topo, homophilous, r2);

  auto edge_overlap = [](const AttributedGraph& g) {
    uint64_t shared = 0;
    for (const auto& [u, v] : g.graph().EdgeList()) {
      const auto ku = g.Keywords(u);
      const auto kv = g.Keywords(v);
      const std::vector<KeywordId> a(ku.begin(), ku.end());
      const std::vector<KeywordId> b(kv.begin(), kv.end());
      if (SortedIntersects(a, b)) ++shared;
    }
    return shared;
  };
  // Homophily makes adjacent vertices far likelier to share a keyword.
  EXPECT_GT(edge_overlap(social), 3 * (edge_overlap(plain) + 1));
}

TEST(KeywordAssignerTest, Deterministic) {
  KeywordModel model;
  model.vocabulary_size = 30;
  Rng a(5), b(5);
  const AttributedGraph g1 = AssignKeywords(CycleGraph(100), model, a);
  const AttributedGraph g2 = AssignKeywords(CycleGraph(100), model, b);
  for (VertexId v = 0; v < 100; ++v) {
    const auto k1 = g1.Keywords(v);
    const auto k2 = g2.Keywords(v);
    ASSERT_EQ(std::vector<KeywordId>(k1.begin(), k1.end()),
              std::vector<KeywordId>(k2.begin(), k2.end()));
  }
}

TEST(PresetsTest, AllNamesResolve) {
  for (const auto& name : PresetNames()) {
    const auto spec = GetPreset(name, 0.02);
    ASSERT_TRUE(spec.ok()) << name;
    EXPECT_EQ(spec->name, name);
    EXPECT_GT(spec->paper_vertices, 0u);
    const AttributedGraph g = BuildDataset(*spec);
    EXPECT_EQ(g.num_vertices(), spec->num_vertices);
    EXPECT_GT(g.num_edges(), 0u);
    EXPECT_GT(g.num_keywords(), 0u);
  }
}

TEST(PresetsTest, UnknownNameFails) {
  EXPECT_FALSE(GetPreset("orkut").ok());
  EXPECT_EQ(GetPreset("orkut").status().code(), StatusCode::kNotFound);
}

TEST(PresetsTest, ScaleControlsSize) {
  const auto small = GetPreset("gowalla", 0.05);
  const auto large = GetPreset("gowalla", 0.5);
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_LT(small->num_vertices, large->num_vertices);
  EXPECT_FALSE(GetPreset("gowalla", 0.0).ok());
}

TEST(PresetsTest, BuildsAreDeterministic) {
  const auto spec = GetPreset("brightkite", 0.05);
  ASSERT_TRUE(spec.ok());
  const AttributedGraph a = BuildDataset(*spec);
  const AttributedGraph b = BuildDataset(*spec);
  EXPECT_EQ(a.graph().EdgeList(), b.graph().EdgeList());
  EXPECT_EQ(a.total_keyword_assignments(), b.total_keyword_assignments());
}

TEST(PresetsTest, TwitterIsDenser) {
  const auto twitter = GetPreset("twitter", 0.05);
  const auto dblp = GetPreset("dblp", 0.05);
  ASSERT_TRUE(twitter.ok() && dblp.ok());
  const AttributedGraph t = BuildDataset(*twitter);
  const AttributedGraph d = BuildDataset(*dblp);
  EXPECT_GT(t.graph().AverageDegree(), 2 * d.graph().AverageDegree());
}

}  // namespace
}  // namespace ktg
