// Copyright (c) 2026 The ktg Authors.
// Shared structural validators for the library's JSON document schemas.
//
// Several suites (observability, CLI goldens, server protocol) and the CI
// smoke script need to assert "this string is a well-formed ktg.metrics.v1
// / ktg.trace.v1 / ktg.response.v1 document". Each previously re-derived
// its own substring checks; these validators parse the document with
// util/json_parse and walk the real structure instead. They return a list
// of human-readable problems — empty means valid — so a test failure
// names every violation at once:
//
//   EXPECT_THAT(CheckMetricsV1(json), IsEmpty());

#ifndef KTG_TESTS_SCHEMA_CHECK_H_
#define KTG_TESTS_SCHEMA_CHECK_H_

#include <string>
#include <string_view>
#include <vector>

namespace ktg::testing {

/// ktg.metrics.v1: {"schema","counters":{str:num},"gauges":{str:num},
/// "histograms":{str:{count,mean,min,max,p50,p90,p99,sum}}}.
std::vector<std::string> CheckMetricsV1(std::string_view json);

/// ktg.trace.v1: {"schema","capacity","recorded","dropped",
/// "events":[{t_ms,kind,depth,vertex,detail}]}.
std::vector<std::string> CheckTraceV1(std::string_view json);

/// ktg.response.v1 (one server response line): {"schema","id","status"}
/// plus status-specific members — "ok" carries groups/stats/serving,
/// "rejected" retry_after_ms, "error" message.
std::vector<std::string> CheckResponseV1(std::string_view json);

}  // namespace ktg::testing

#endif  // KTG_TESTS_SCHEMA_CHECK_H_
