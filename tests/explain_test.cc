// Copyright (c) 2026 The ktg Authors.
// Explanation/audit tests: valid results pass, fabricated groups fail with
// precise violations, and the audit agrees with the engines on every
// returned group.

#include <gtest/gtest.h>

#include "core/explain.h"
#include "core/ktg_engine.h"
#include "core/paper_example.h"
#include "datagen/generators.h"
#include "datagen/keyword_assigner.h"
#include "datagen/query_gen.h"
#include "index/bfs_checker.h"
#include "keywords/inverted_index.h"

namespace ktg {
namespace {

Group MakeGroup(std::vector<VertexId> members) {
  Group g;
  g.members = std::move(members);
  return g;
}

class ExplainTest : public ::testing::Test {
 protected:
  ExplainTest() : graph_(PaperExampleGraph()), query_(PaperExampleQuery(graph_)) {}
  AttributedGraph graph_;
  KtgQuery query_;
};

TEST_F(ExplainTest, ValidGroupPasses) {
  const auto ex = ExplainGroup(graph_, query_, MakeGroup({1, 4, 10}));
  EXPECT_TRUE(ex.valid) << ex.ToString();
  EXPECT_EQ(ex.covered_count, 4);
  EXPECT_EQ(ex.missing_terms, std::vector<std::string>{"<unknown #3>"});
  EXPECT_EQ(ex.pairs.size(), 3u);
  for (const auto& pe : ex.pairs) EXPECT_TRUE(pe.tenuous);
  EXPECT_NE(ex.ToString().find("VALID"), std::string::npos);
}

TEST_F(ExplainTest, AdjacentPairFlagged) {
  // u6-u7 are directly connected: k=1 violation.
  const auto ex = ExplainGroup(graph_, query_, MakeGroup({1, 6, 7}));
  EXPECT_FALSE(ex.valid);
  ASSERT_EQ(ex.violations.size(), 1u);
  EXPECT_NE(ex.violations[0].find("(6, 7)"), std::string::npos);
  EXPECT_NE(ex.violations[0].find("1 hop"), std::string::npos);
}

TEST_F(ExplainTest, ZeroCoverageMemberFlagged) {
  // u8 carries only ML — no query keyword.
  const auto ex = ExplainGroup(graph_, query_, MakeGroup({1, 8, 10}));
  EXPECT_FALSE(ex.valid);
  bool found = false;
  for (const auto& v : ex.violations) {
    found |= v.find("member 8 covers no query keyword") != std::string::npos;
  }
  EXPECT_TRUE(found) << ex.ToString();
}

TEST_F(ExplainTest, WrongSizeFlagged) {
  const auto ex = ExplainGroup(graph_, query_, MakeGroup({1, 10}));
  EXPECT_FALSE(ex.valid);
  EXPECT_NE(ex.violations[0].find("2 members"), std::string::npos);
}

TEST_F(ExplainTest, NonexistentMemberFlagged) {
  const auto ex = ExplainGroup(graph_, query_, MakeGroup({1, 10, 99}));
  EXPECT_FALSE(ex.valid);
  bool found = false;
  for (const auto& v : ex.violations) {
    found |= v.find("does not exist") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST_F(ExplainTest, DisconnectedPairIsTenuous) {
  AttributedGraphBuilder b;
  b.mutable_topology().AddEdge(0, 1);
  b.mutable_topology().EnsureVertices(3);
  b.AddKeyword(0, "x");
  b.AddKeyword(2, "x");
  const AttributedGraph g = b.Build();
  KtgQuery q;
  q.keywords = {g.vocabulary().Find("x")};
  q.group_size = 2;
  q.tenuity = 5;
  const auto ex = ExplainGroup(g, q, MakeGroup({0, 2}));
  EXPECT_TRUE(ex.valid) << ex.ToString();
  EXPECT_EQ(ex.pairs[0].distance, kUnreachable);
  EXPECT_NE(ex.ToString().find("inf"), std::string::npos);
}

TEST(ExplainPropertyTest, EveryEngineResultAuditsValid) {
  Rng rng(0xE8A);
  KeywordModel model;
  model.vocabulary_size = 25;
  const AttributedGraph g =
      AssignKeywords(BarabasiAlbert(120, 3, rng), model, rng);
  const InvertedIndex idx(g);
  BfsChecker checker(g.graph());

  WorkloadOptions wopts;
  wopts.num_queries = 6;
  wopts.group_size = 3;
  wopts.tenuity = 2;
  wopts.top_n = 4;
  for (const auto& q : GenerateWorkload(g, wopts, rng)) {
    const auto r = RunKtg(g, idx, checker, q);
    ASSERT_TRUE(r.ok());
    for (const auto& grp : r->groups) {
      const auto ex = ExplainGroup(g, q, grp);
      EXPECT_TRUE(ex.valid) << ex.ToString();
      EXPECT_EQ(ex.covered_count, grp.covered());
    }
  }
}

}  // namespace
}  // namespace ktg
