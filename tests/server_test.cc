// Copyright (c) 2026 The ktg Authors.
// The resident query service: protocol parsing, admission control,
// coalescing, deadlines, drain-on-stop, the TCP front end, and a loadgen
// differential pass — everything behind `ktg serve`.

#include <atomic>
#include <condition_variable>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/ktg_engine.h"
#include "core/snapshot.h"
#include "datagen/mutation_gen.h"
#include "datagen/presets.h"
#include "datagen/query_gen.h"
#include "index/checker_factory.h"
#include "server/loadgen.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/tcp.h"
#include "obs/schema_check.h"
#include "util/json_parse.h"
#include "util/macros.h"
#include "util/rng.h"

namespace ktg::server {
namespace {

using ::ktg::obs::CheckMetricsV1;
using ::ktg::obs::CheckResponseV1;

std::string Problems(const std::vector<std::string>& p) {
  std::string out;
  for (const auto& s : p) out += s + "; ";
  return out;
}

AttributedGraph TestGraph() {
  auto spec = GetPreset("gowalla", 0.05);
  KTG_CHECK_MSG(spec.ok(), "preset");
  return BuildDataset(*spec);
}

std::vector<KtgQuery> TestWorkload(const AttributedGraph& graph,
                                   uint32_t num_queries) {
  WorkloadOptions opts;
  opts.num_queries = num_queries;
  opts.group_size = 4;
  opts.tenuity = 2;
  opts.top_n = 5;
  opts.keyword_count = 6;
  opts.frequency_banded = true;
  Rng rng(11);
  return GenerateWorkload(graph, opts, rng);
}

/// Collects one response synchronously.
std::string Call(KtgServer& server, const std::string& line) {
  std::promise<std::string> promise;
  auto future = promise.get_future();
  server.HandleLine(line,
                    [&](std::string r) { promise.set_value(std::move(r)); });
  return future.get();
}

// ---------------------------------------------------------------------------
// Protocol parsing.

TEST(ProtocolTest, ParsesQueryRequest) {
  const auto req = ParseRequestLine(
      R"({"op":"query","id":7,"keywords":["a","b"],"p":4,"k":2,"n":3,)"
      R"("algo":"vkc","deadline_ms":12.5,"authors":[1,2]})");
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->op, RequestOp::kQuery);
  EXPECT_EQ(req->id, 7u);
  EXPECT_EQ(req->keywords, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(req->group_size, 4u);
  EXPECT_EQ(req->tenuity, 2);
  EXPECT_EQ(req->top_n, 3u);
  EXPECT_EQ(req->sort, SortStrategy::kVkc);
  EXPECT_DOUBLE_EQ(req->deadline_ms, 12.5);
  EXPECT_EQ(req->authors, (std::vector<VertexId>{1, 2}));
}

TEST(ProtocolTest, RejectsMalformedRequests) {
  EXPECT_FALSE(ParseRequestLine("not json").ok());
  EXPECT_FALSE(ParseRequestLine("[1,2]").ok());
  EXPECT_FALSE(ParseRequestLine(R"({"op":"frobnicate","id":1})").ok());
  // query without keywords
  EXPECT_FALSE(ParseRequestLine(R"({"op":"query","id":1})").ok());
  // p out of range
  EXPECT_FALSE(
      ParseRequestLine(R"({"op":"query","keywords":["a"],"p":65})").ok());
  // negative deadline
  EXPECT_FALSE(ParseRequestLine(
                   R"({"op":"query","keywords":["a"],"deadline_ms":-1})")
                   .ok());
  // mistyped keyword entries
  EXPECT_FALSE(
      ParseRequestLine(R"({"op":"query","keywords":[1,2]})").ok());
}

TEST(ProtocolTest, ParsesMutateRequest) {
  const auto req = ParseRequestLine(
      R"({"op":"mutate","id":9,"add_edges":[[1,2]],"remove_edges":[[3,4]],)"
      R"("add_keywords":[[5,"db"]]})");
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->op, RequestOp::kMutate);
  EXPECT_EQ(req->mutation.add_edges,
            (std::vector<std::pair<VertexId, VertexId>>{{1, 2}}));
  EXPECT_EQ(req->mutation.remove_edges,
            (std::vector<std::pair<VertexId, VertexId>>{{3, 4}}));
  ASSERT_EQ(req->mutation.add_keywords.size(), 1u);
  EXPECT_EQ(req->mutation.add_keywords[0].first, 5u);
  EXPECT_EQ(req->mutation.add_keywords[0].second, "db");

  // A mutate with no deltas is a protocol error, as are malformed entries.
  EXPECT_FALSE(ParseRequestLine(R"({"op":"mutate","id":1})").ok());
  EXPECT_FALSE(
      ParseRequestLine(R"({"op":"mutate","add_edges":[[1]]})").ok());
  EXPECT_FALSE(
      ParseRequestLine(R"({"op":"mutate","add_keywords":[[5,""]]})").ok());
}

TEST(ProtocolTest, MutateRequestRoundTripsThroughParse) {
  MutationBatch batch;
  batch.add_edges = {{1, 2}, {7, 9}};
  batch.remove_edges = {{3, 4}};
  batch.add_keywords = {{5, "db"}, {6, "graphs"}};
  const auto req = ParseRequestLine(MutateRequestJson(11, batch));
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->id, 11u);
  EXPECT_EQ(req->op, RequestOp::kMutate);
  EXPECT_EQ(req->mutation.add_edges, batch.add_edges);
  EXPECT_EQ(req->mutation.remove_edges, batch.remove_edges);
  EXPECT_EQ(req->mutation.add_keywords, batch.add_keywords);
}

TEST(ProtocolTest, QueryRequestRoundTripsThroughParse) {
  const AttributedGraph graph = TestGraph();
  const auto queries = TestWorkload(graph, 1);
  ASSERT_FALSE(queries.empty());
  const std::string line =
      QueryRequestJson(42, graph, queries[0], SortStrategy::kVkcDeg, 0.0);
  const auto req = ParseRequestLine(line);
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->id, 42u);
  EXPECT_EQ(req->group_size, queries[0].group_size);
  EXPECT_EQ(req->tenuity, queries[0].tenuity);
  EXPECT_EQ(req->top_n, queries[0].top_n);
  EXPECT_EQ(req->keywords.size(), queries[0].keywords.size());
}

// ---------------------------------------------------------------------------
// KtgServer behavior.

TEST(KtgServerTest, InlineOpsAnswerImmediately) {
  KtgServer server(TestGraph(), {});
  ASSERT_TRUE(server.Start().ok());

  const std::string pong = Call(server, PingRequestJson(3));
  EXPECT_TRUE(CheckResponseV1(pong).empty()) << Problems(CheckResponseV1(pong));
  EXPECT_NE(pong.find("\"pong\":true"), std::string::npos);

  const std::string metrics = Call(server, MetricsRequestJson(4));
  ASSERT_TRUE(CheckResponseV1(metrics).empty())
      << Problems(CheckResponseV1(metrics));
  auto doc = ParseJson(metrics);
  ASSERT_TRUE(doc.ok());
  const JsonValue* m = doc->Find("metrics");
  ASSERT_NE(m, nullptr);
  EXPECT_TRUE(CheckMetricsV1(DumpJson(*m)).empty())
      << Problems(CheckMetricsV1(DumpJson(*m)));

  const std::string info = Call(server, R"({"op":"info","id":5})");
  auto info_doc = ParseJson(info);
  ASSERT_TRUE(info_doc.ok());
  ASSERT_NE(info_doc->Find("info"), nullptr);
  EXPECT_NE(info_doc->Find("info")->Find("dataset"), nullptr);

  const std::string err = Call(server, "{\"op\":\"nope\"}");
  EXPECT_NE(err.find("\"status\":\"error\""), std::string::npos);
  server.Stop();
}

TEST(KtgServerTest, QueryResponsesMatchDirectEngineRuns) {
  AttributedGraph graph = TestGraph();
  const auto queries = TestWorkload(graph, 6);
  ASSERT_FALSE(queries.empty());

  const InvertedIndex index(graph);
  const auto checker =
      MakeChecker(CheckerKind::kNlrnl, graph.graph(), 2, /*num_threads=*/0);

  KtgServer server(graph, {});
  ASSERT_TRUE(server.Start().ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    const std::string line =
        QueryRequestJson(i, graph, queries[i], SortStrategy::kVkcDeg, 0.0);
    const std::string response = Call(server, line);
    ASSERT_TRUE(CheckResponseV1(response).empty())
        << Problems(CheckResponseV1(response));

    const auto expect = RunKtg(graph, index, *checker, queries[i], {});
    ASSERT_TRUE(expect.ok());
    auto doc = ParseJson(response);
    ASSERT_TRUE(doc.ok());
    const JsonValue* groups = doc->Find("groups");
    ASSERT_NE(groups, nullptr);
    ASSERT_EQ(groups->AsArray().size(), expect->groups.size());
    for (size_t g = 0; g < expect->groups.size(); ++g) {
      const JsonValue& jg = groups->AsArray()[g];
      EXPECT_EQ(static_cast<int>(jg.Find("covered")->AsDouble()),
                expect->groups[g].covered());
      const auto& members = jg.Find("members")->AsArray();
      ASSERT_EQ(members.size(), expect->groups[g].members.size());
      for (size_t m = 0; m < members.size(); ++m) {
        EXPECT_EQ(static_cast<VertexId>(members[m].AsDouble()),
                  expect->groups[g].members[m]);
      }
    }
  }
  server.Stop();
}

TEST(KtgServerTest, MutateAdvancesEpochAndQueriesPinIt) {
  AttributedGraph graph = TestGraph();
  const auto queries = TestWorkload(graph, 2);
  ASSERT_FALSE(queries.empty());
  const auto edges = graph.graph().EdgeList();
  ASSERT_FALSE(edges.empty());

  KtgServer server(graph, {});
  ASSERT_TRUE(server.Start().ok());

  // Before any mutation, responses name epoch 0.
  auto d0 = ParseJson(Call(server, QueryRequestJson(1, graph, queries[0],
                                                    SortStrategy::kVkcDeg, 0)));
  ASSERT_TRUE(d0.ok());
  EXPECT_EQ(d0->Find("serving")->GetInt("epoch", -1).value(), 0);

  // Remove an existing edge through the wire op.
  MutationBatch batch;
  batch.remove_edges = {edges.front()};
  auto md = ParseJson(Call(server, MutateRequestJson(2, batch)));
  ASSERT_TRUE(md.ok());
  EXPECT_EQ(md->Find("status")->AsString(), "ok");
  const JsonValue* info = md->Find("mutate");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->GetInt("epoch", -1).value(), 1);
  EXPECT_EQ(info->GetInt("edges_removed", -1).value(), 1);

  // The published snapshot reflects the change and later queries pin it.
  const SnapshotPin pin = server.Pin();
  EXPECT_EQ(pin->epoch(), 1u);
  EXPECT_FALSE(
      pin->graph().graph().HasEdge(edges.front().first, edges.front().second));
  auto d1 = ParseJson(Call(server, QueryRequestJson(3, graph, queries[0],
                                                    SortStrategy::kVkcDeg, 0)));
  ASSERT_TRUE(d1.ok());
  EXPECT_EQ(d1->Find("serving")->GetInt("epoch", -1).value(), 1);
  EXPECT_EQ(server.metrics().CounterValue("server.mutations"), 1u);

  // Invalid batches are rejected atomically with an error response.
  MutationBatch bad;
  bad.add_edges = {{0, 0}};  // self-loop
  auto bd = ParseJson(Call(server, MutateRequestJson(4, bad)));
  ASSERT_TRUE(bd.ok());
  EXPECT_EQ(bd->Find("status")->AsString(), "error");
  EXPECT_EQ(server.Pin()->epoch(), 1u);
  server.Stop();
}

TEST(KtgServerTest, AdmissionControlRejectsWhenQueueFull) {
  AttributedGraph graph = TestGraph();
  const auto queries = TestWorkload(graph, 1);
  ASSERT_FALSE(queries.empty());

  ServerOptions opts;
  opts.workers = 1;
  opts.max_queue = 0;  // every query is over the bound
  KtgServer server(std::move(graph), opts);
  ASSERT_TRUE(server.Start().ok());

  const std::string response = [&] {
    std::promise<std::string> p;
    auto f = p.get_future();
    server.SubmitQuery(9, queries[0], SortStrategy::kVkcDeg, 0.0,
                       [&](std::string r) { p.set_value(std::move(r)); });
    return f.get();
  }();
  ASSERT_TRUE(CheckResponseV1(response).empty())
      << Problems(CheckResponseV1(response));
  auto doc = ParseJson(response);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("status")->AsString(), "rejected");
  EXPECT_GE(doc->Find("retry_after_ms")->AsDouble(), 1.0);
  EXPECT_EQ(server.metrics().CounterValue("server.rejected"), 1u);
  server.Stop();
}

TEST(KtgServerTest, ExpiredDeadlineServesBestSoFarWithGap) {
  AttributedGraph graph = TestGraph();
  const auto queries = TestWorkload(graph, 1);
  ASSERT_FALSE(queries.empty());

  KtgServer server(std::move(graph), {});
  ASSERT_TRUE(server.Start().ok());
  // Any nonzero queue wait exceeds a 1ns deadline by the time a worker
  // claims the request: the run happens anyway (floor budget, anytime
  // mode) and the response carries best-so-far groups plus a sound gap
  // instead of a bare timeout.
  std::promise<std::string> p;
  auto f = p.get_future();
  server.SubmitQuery(1, queries[0], SortStrategy::kVkcDeg, 1e-6,
                     [&](std::string r) { p.set_value(std::move(r)); });
  const std::string response = f.get();
  ASSERT_TRUE(CheckResponseV1(response).empty())
      << Problems(CheckResponseV1(response));
  auto doc = ParseJson(response);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("status")->AsString(), "ok");
  const JsonValue* serving = doc->Find("serving");
  ASSERT_NE(serving, nullptr);
  EXPECT_FALSE(serving->GetBool("complete", true).value());
  // The gap is a sound bound: 0 <= gap <= |W_Q|.
  const double gap = serving->Find("gap")->AsDouble();
  EXPECT_GE(gap, 0.0);
  EXPECT_LE(gap, static_cast<double>(queries[0].keywords.size()));
  EXPECT_GE(server.metrics().CounterValue("server.deadline_missed"), 1u);
  EXPECT_GE(server.metrics().CounterValue("server.expired_served"), 1u);
  server.Stop();
}

// A server configured with engine.mode = portfolio answers queries from
// the metaheuristic portfolio: status "ok", serving.complete always false
// (heuristic answers are never claimed exact), and a sound serving.gap.
TEST(KtgServerTest, PortfolioModeServesHeuristicAnswers) {
  AttributedGraph graph = TestGraph();
  const auto queries = TestWorkload(graph, 1);
  ASSERT_FALSE(queries.empty());

  ServerOptions opts;
  opts.engine.mode = EngineMode::kPortfolio;
  KtgServer server(std::move(graph), opts);
  ASSERT_TRUE(server.Start().ok());
  std::promise<std::string> p;
  auto f = p.get_future();
  server.SubmitQuery(1, queries[0], SortStrategy::kVkcDeg, 0.0,
                     [&](std::string r) { p.set_value(std::move(r)); });
  const std::string response = f.get();
  ASSERT_TRUE(CheckResponseV1(response).empty())
      << Problems(CheckResponseV1(response));
  auto doc = ParseJson(response);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("status")->AsString(), "ok");
  const JsonValue* serving = doc->Find("serving");
  ASSERT_NE(serving, nullptr);
  EXPECT_FALSE(serving->GetBool("complete", true).value());
  EXPECT_GE(serving->Find("gap")->AsDouble(), 0.0);
  server.Stop();
}

// Blocks the single worker inside request A's response callback, queues
// five identical queries behind it, then releases: the next claim must
// coalesce all five into one engine run.
TEST(KtgServerTest, IdenticalQueuedQueriesCoalesceIntoOneRun) {
  AttributedGraph graph = TestGraph();
  const auto queries = TestWorkload(graph, 2);
  ASSERT_GE(queries.size(), 2u);

  ServerOptions opts;
  opts.workers = 1;
  KtgServer server(std::move(graph), opts);
  ASSERT_TRUE(server.Start().ok());

  std::promise<void> worker_blocked;
  std::promise<void> release;
  auto release_future = release.get_future().share();
  server.SubmitQuery(0, queries[0], SortStrategy::kVkcDeg, 0.0,
                     [&, first = true](std::string) mutable {
                       if (!first) return;
                       first = false;
                       worker_blocked.set_value();
                       release_future.wait();
                     });
  worker_blocked.get_future().wait();

  constexpr int kDuplicates = 5;
  std::mutex mu;
  std::condition_variable cv;
  int answered = 0;
  int coalesced_flags = 0;
  std::vector<std::string> member_dumps;
  for (int i = 0; i < kDuplicates; ++i) {
    server.SubmitQuery(
        100 + i, queries[1], SortStrategy::kVkcDeg, 0.0, [&](std::string r) {
          auto doc = ParseJson(r);
          ASSERT_TRUE(doc.ok());
          ASSERT_EQ(doc->Find("status")->AsString(), "ok");
          std::lock_guard<std::mutex> lock(mu);
          const JsonValue* serving = doc->Find("serving");
          if (serving->GetBool("coalesced", false).value()) ++coalesced_flags;
          member_dumps.push_back(DumpJson(*doc->Find("groups")));
          if (++answered == kDuplicates) cv.notify_one();
        });
  }
  EXPECT_EQ(server.queue_depth(), static_cast<size_t>(kDuplicates));
  release.set_value();
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return answered == kDuplicates; });
  }
  EXPECT_EQ(coalesced_flags, kDuplicates - 1);
  EXPECT_EQ(server.metrics().CounterValue("server.batch.coalesced"),
            static_cast<uint64_t>(kDuplicates - 1));
  for (const std::string& d : member_dumps) {
    EXPECT_EQ(d, member_dumps.front());
  }
  server.Stop();
}

TEST(KtgServerTest, StopDrainsQueuedRequestsThenRefusesNew) {
  AttributedGraph graph = TestGraph();
  const auto queries = TestWorkload(graph, 4);
  ASSERT_GE(queries.size(), 4u);

  ServerOptions opts;
  opts.workers = 1;
  KtgServer server(std::move(graph), opts);
  ASSERT_TRUE(server.Start().ok());

  std::promise<void> worker_blocked;
  std::promise<void> release;
  auto release_future = release.get_future().share();
  server.SubmitQuery(0, queries[0], SortStrategy::kVkcDeg, 0.0,
                     [&, first = true](std::string) mutable {
                       if (!first) return;
                       first = false;
                       worker_blocked.set_value();
                       release_future.wait();
                     });
  worker_blocked.get_future().wait();

  std::atomic<int> answered{0};
  for (int i = 1; i < 4; ++i) {
    server.SubmitQuery(i, queries[i], SortStrategy::kVkcDeg, 0.0,
                       [&](std::string r) {
                         EXPECT_NE(r.find("\"status\":\"ok\""),
                                   std::string::npos);
                         answered.fetch_add(1);
                       });
  }
  std::thread stopper([&] { server.Stop(); });
  release.set_value();
  stopper.join();
  // Stop() returns only after the workers drained the queue.
  EXPECT_EQ(answered.load(), 3);

  std::promise<std::string> p;
  auto f = p.get_future();
  server.SubmitQuery(99, queries[0], SortStrategy::kVkcDeg, 0.0,
                     [&](std::string r) { p.set_value(std::move(r)); });
  EXPECT_NE(f.get().find("\"status\":\"error\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// TCP front end + load generator, end to end.

TEST(TcpEndToEndTest, LoadgenClosedLoopDifferentialIsClean) {
  AttributedGraph graph = TestGraph();
  const auto queries = TestWorkload(graph, 8);
  ASSERT_FALSE(queries.empty());

  ServerOptions sopts;
  sopts.workers = 2;
  sopts.cache_mb = 8;
  KtgServer server(graph, sopts);
  ASSERT_TRUE(server.Start().ok());
  TcpServer tcp(server);
  ASSERT_TRUE(tcp.Listen(0).ok());
  ASSERT_GT(tcp.port(), 0);
  tcp.Start();

  const InvertedIndex index(graph);
  const auto checker =
      MakeChecker(CheckerKind::kNlrnl, graph.graph(), 2, /*num_threads=*/0);
  std::mutex mu;
  std::map<size_t, KtgResult> memo;

  LoadgenOptions lopts;
  lopts.connections = 3;
  lopts.duration_s = 0;
  lopts.max_queries = 200;
  lopts.reference = [&](size_t qi, uint64_t epoch) -> const KtgResult* {
    EXPECT_EQ(epoch, 0u);  // read-only run: every response pins epoch 0
    std::lock_guard<std::mutex> lock(mu);
    auto it = memo.find(qi);
    if (it == memo.end()) {
      auto r = RunKtg(graph, index, *checker, queries[qi], {});
      if (!r.ok()) return nullptr;
      it = memo.emplace(qi, std::move(*r)).first;
    }
    return &it->second;
  };

  const auto report =
      RunLoadgen("127.0.0.1", tcp.port(), graph, queries, lopts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->sent, 200u);
  EXPECT_EQ(report->completed, 200u);
  EXPECT_EQ(report->errors, 0u);
  EXPECT_EQ(report->checked, 200u);
  EXPECT_EQ(report->mismatches, 0u);
  EXPECT_GT(report->latency.count, 0u);

  // The report document itself is schema-stable.
  auto doc = ParseJson(report->ToJson());
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("schema")->AsString(), "ktg.loadgen.v1");

  tcp.Shutdown();
  server.Stop();
}

// Mixed read/write run over TCP: ~20% of slots are mutate requests; every
// complete query response must be bit-identical to a direct engine run
// against the epoch that response pinned (oracle replays the server's
// applied-order history through its own SnapshotStore).
TEST(TcpEndToEndTest, MixedLoadgenDifferentialIsCleanAcrossEpochs) {
  AttributedGraph graph = TestGraph();
  const auto queries = TestWorkload(graph, 8);
  ASSERT_FALSE(queries.empty());

  ServerOptions sopts;
  sopts.workers = 2;
  sopts.cache_mb = 8;
  KtgServer server(graph, sopts);
  ASSERT_TRUE(server.Start().ok());
  TcpServer tcp(server);
  ASSERT_TRUE(tcp.Listen(0).ok());
  tcp.Start();

  LoadgenOptions lopts;
  lopts.connections = 3;
  lopts.duration_s = 0;
  lopts.max_queries = 150;
  lopts.write_ratio = 0.2;
  lopts.seed = 5;
  MutationWorkloadOptions mopts;
  mopts.num_batches = 16;
  mopts.edges_per_batch = 2;
  mopts.keywords_per_batch = 1;
  Rng mrng(23);
  lopts.mutations = GenerateMutationWorkload(graph, mopts, mrng);
  ASSERT_FALSE(lopts.mutations.empty());

  SnapshotStore oracle(AttributedGraph(graph), {});
  std::mutex mu;
  std::map<uint64_t, size_t> epoch_batches;
  std::map<uint64_t, SnapshotPin> pins;
  pins[0] = oracle.Pin();
  std::map<std::pair<size_t, uint64_t>, KtgResult> memo;
  lopts.on_mutation_applied = [&](uint64_t epoch, size_t mi) {
    std::lock_guard<std::mutex> lock(mu);
    epoch_batches[epoch] = mi;
  };
  lopts.reference = [&](size_t qi, uint64_t epoch) -> const KtgResult* {
    std::lock_guard<std::mutex> lock(mu);
    if (const auto it = memo.find({qi, epoch}); it != memo.end()) {
      return &it->second;
    }
    while (oracle.epoch() < epoch) {
      const auto bi = epoch_batches.find(oracle.epoch() + 1);
      if (bi == epoch_batches.end()) return nullptr;
      if (!oracle.Apply(lopts.mutations[bi->second]).ok()) return nullptr;
      pins[oracle.epoch()] = oracle.Pin();
    }
    const auto pin = pins.find(epoch);
    if (pin == pins.end()) return nullptr;
    auto r = RunKtg(pin->second->graph(), pin->second->index(),
                    *pin->second->checker(), queries[qi], {});
    if (!r.ok()) return nullptr;
    return &memo.emplace(std::make_pair(qi, epoch), std::move(*r))
                .first->second;
  };

  const auto report =
      RunLoadgen("127.0.0.1", tcp.port(), graph, queries, lopts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->errors, 0u);
  EXPECT_GT(report->mutations_applied, 0u);
  EXPECT_EQ(report->mutations_failed, 0u);
  EXPECT_EQ(report->mutations_applied, report->final_epoch);
  EXPECT_GT(report->checked, 0u);
  EXPECT_EQ(report->mismatches, 0u);

  tcp.Shutdown();
  server.Stop();
}

TEST(TcpEndToEndTest, OpenLoopDrainsAndReportsAllResponses) {
  AttributedGraph graph = TestGraph();
  const auto queries = TestWorkload(graph, 4);
  ASSERT_FALSE(queries.empty());

  KtgServer server(graph, {});
  ASSERT_TRUE(server.Start().ok());
  TcpServer tcp(server);
  ASSERT_TRUE(tcp.Listen(0).ok());
  tcp.Start();

  LoadgenOptions lopts;
  lopts.open_loop = true;
  lopts.connections = 2;
  lopts.rate_qps = 500;
  lopts.duration_s = 0;
  lopts.max_queries = 60;
  const auto report =
      RunLoadgen("127.0.0.1", tcp.port(), graph, queries, lopts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->sent, 60u);
  EXPECT_EQ(report->completed, 60u);
  EXPECT_EQ(report->errors, 0u);

  tcp.Shutdown();
  server.Stop();
}

}  // namespace
}  // namespace ktg::server
