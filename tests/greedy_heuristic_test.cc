// Copyright (c) 2026 The ktg Authors.
// Greedy KTG heuristic tests: every returned group satisfies all KTG
// constraints; coverage never exceeds the exact optimum; the heuristic is
// much cheaper than exact search on adversarial instances.

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/greedy_heuristic.h"
#include "core/ktg_engine.h"
#include "core/paper_example.h"
#include "datagen/generators.h"
#include "datagen/keyword_assigner.h"
#include "datagen/query_gen.h"
#include "index/bfs_checker.h"
#include "keywords/inverted_index.h"

namespace ktg {
namespace {

TEST(GreedyHeuristicTest, PaperExampleIsOptimalHere) {
  const AttributedGraph g = PaperExampleGraph();
  const InvertedIndex idx(g);
  BfsChecker checker(g.graph());
  const KtgQuery q = PaperExampleQuery(g);

  const auto r = RunKtgGreedy(g, idx, checker, q);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->groups.empty());
  // Greedy VKC-DEG happens to reach the optimum (4/5) on the example —
  // it follows KTG-VKC-DEG's first root-to-leaf path.
  EXPECT_EQ(r->groups.front().covered(), 4);
}

TEST(GreedyHeuristicTest, ConstraintsAlwaysHold) {
  Rng rng(0x6EED);
  for (int round = 0; round < 8; ++round) {
    KeywordModel model;
    model.vocabulary_size = 20;
    model.min_per_vertex = 1;
    model.max_per_vertex = 3;
    const AttributedGraph g =
        AssignKeywords(BarabasiAlbert(100, 3, rng), model, rng);
    const InvertedIndex idx(g);
    BfsChecker checker(g.graph());

    WorkloadOptions wopts;
    wopts.num_queries = 2;
    wopts.group_size = 3 + round % 3;
    wopts.tenuity = static_cast<HopDistance>(1 + round % 2);
    wopts.top_n = 3;
    for (const auto& q : GenerateWorkload(g, wopts, rng)) {
      const auto r = RunKtgGreedy(g, idx, checker, q);
      ASSERT_TRUE(r.ok());
      for (const auto& grp : r->groups) {
        EXPECT_EQ(grp.members.size(), q.group_size);
        EXPECT_TRUE(IsKDistanceGroup(grp.members, q.tenuity, checker));
        for (const VertexId m : grp.members) {
          EXPECT_GT(PopCount(CoverMaskOf(g, m, q.keywords)), 0);
        }
      }
    }
  }
}

TEST(GreedyHeuristicTest, NeverBeatsExactOptimum) {
  Rng rng(0x6EEE);
  KeywordModel model;
  model.vocabulary_size = 15;
  model.min_per_vertex = 1;
  model.max_per_vertex = 2;
  const AttributedGraph g =
      AssignKeywords(ErdosRenyi(60, 0.06, rng), model, rng);
  const InvertedIndex idx(g);

  WorkloadOptions wopts;
  wopts.num_queries = 6;
  wopts.keyword_count = 5;
  wopts.group_size = 3;
  wopts.tenuity = 1;
  wopts.top_n = 1;
  for (const auto& q : GenerateWorkload(g, wopts, rng)) {
    BfsChecker c1(g.graph()), c2(g.graph());
    const auto exact = BruteForceKtg(g, idx, c1, q);
    const auto greedy = RunKtgGreedy(g, idx, c2, q);
    ASSERT_TRUE(exact.ok() && greedy.ok());
    const int best_exact =
        exact->groups.empty() ? 0 : exact->groups.front().covered();
    const int best_greedy =
        greedy->groups.empty() ? 0 : greedy->groups.front().covered();
    EXPECT_LE(best_greedy, best_exact);
    // And the heuristic finds *something* whenever a group exists and its
    // first pivot survives (not guaranteed in theory; holds on this data).
    if (best_exact > 0) {
      EXPECT_GT(best_greedy, 0);
    }
  }
}

TEST(GreedyHeuristicTest, RestartsProduceDistinctGroups) {
  const AttributedGraph g = PaperExampleGraph();
  const InvertedIndex idx(g);
  BfsChecker checker(g.graph());
  KtgQuery q = PaperExampleQuery(g);
  q.top_n = 3;
  const auto r = RunKtgGreedy(g, idx, checker, q);
  ASSERT_TRUE(r.ok());
  for (size_t i = 0; i < r->groups.size(); ++i) {
    for (size_t j = i + 1; j < r->groups.size(); ++j) {
      EXPECT_NE(r->groups[i].members, r->groups[j].members);
    }
  }
}

TEST(GreedyHeuristicTest, EmptyWhenInfeasible) {
  AttributedGraphBuilder b;
  b.SetGraph(CompleteGraph(6));
  for (VertexId v = 0; v < 6; ++v) b.AddKeyword(v, "t");
  const AttributedGraph g = b.Build();
  const InvertedIndex idx(g);
  BfsChecker checker(g.graph());
  KtgQuery q;
  q.keywords = {g.vocabulary().Find("t")};
  q.group_size = 2;
  q.tenuity = 1;
  q.top_n = 1;
  const auto r = RunKtgGreedy(g, idx, checker, q);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->groups.empty());
}

TEST(GreedyHeuristicTest, StatsPopulated) {
  const AttributedGraph g = PaperExampleGraph();
  const InvertedIndex idx(g);
  BfsChecker checker(g.graph());
  const auto r = RunKtgGreedy(g, idx, checker, PaperExampleQuery(g));
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->stats.candidates, 0u);
  EXPECT_GT(r->stats.groups_completed, 0u);
  EXPECT_GT(r->stats.distance_checks, 0u);
}

}  // namespace
}  // namespace ktg
