// Copyright (c) 2026 The ktg Authors.
// The sharded execution layer (src/exec/): topology probing, shard
// planning, partition claim/steal/close semantics, the two-level top-N
// bound, per-worker scratch arenas, the sharded pool itself — and the
// end-to-end exactness sweep: sharded search must reproduce the
// brute-force coverage profile at every threads x shards x pinning
// combination (the contract docs/sharding.md states).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>
#include <vector>

#include "core/brute_force.h"
#include "core/conflict_graph_engine.h"
#include "core/ktg_engine.h"
#include "core/topn.h"
#include "datagen/generators.h"
#include "datagen/keyword_assigner.h"
#include "datagen/query_gen.h"
#include "exec/scratch_arena.h"
#include "exec/sharded_pool.h"
#include "exec/sharded_topn.h"
#include "exec/topology.h"
#include "index/bfs_checker.h"
#include "index/checker_factory.h"
#include "keywords/inverted_index.h"

namespace ktg {
namespace {

using exec::ParseCpuList;
using exec::ParseFakeTopology;
using exec::PlanShards;
using exec::ResolveShardCount;
using exec::ScratchArena;
using exec::ShardedPartition;
using exec::ShardedThreadPool;
using exec::ShardedTopN;
using exec::ShardPlan;
using exec::Topology;
using exec::TopologyNode;

// ---------------------------------------------------------------------------
// Topology probing.

TEST(TopologyTest, ParseCpuListRangesAndSingles) {
  const auto cpus = ParseCpuList("0-3,8-11,16");
  ASSERT_TRUE(cpus.ok());
  EXPECT_EQ(cpus.value(),
            (std::vector<uint32_t>{0, 1, 2, 3, 8, 9, 10, 11, 16}));

  const auto one = ParseCpuList("5");
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one.value(), (std::vector<uint32_t>{5}));
}

TEST(TopologyTest, ParseCpuListSortsAndDeduplicates) {
  const auto cpus = ParseCpuList("4,0-2,1,4");
  ASSERT_TRUE(cpus.ok());
  EXPECT_EQ(cpus.value(), (std::vector<uint32_t>{0, 1, 2, 4}));
}

TEST(TopologyTest, ParseCpuListRejectsMalformedInput) {
  EXPECT_FALSE(ParseCpuList("").ok());
  EXPECT_FALSE(ParseCpuList("3-1").ok());     // reversed range
  EXPECT_FALSE(ParseCpuList("0,").ok());      // trailing separator
  EXPECT_FALSE(ParseCpuList("0,,2").ok());    // empty piece
  EXPECT_FALSE(ParseCpuList("a").ok());       // non-numeric
  EXPECT_FALSE(ParseCpuList("0-x").ok());     // non-numeric range end
}

TEST(TopologyTest, ParseFakeTopologyTwoNodes) {
  const auto topo = ParseFakeTopology("0:0-3;1:4-7");
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ(topo.value().source, Topology::Source::kFake);
  ASSERT_EQ(topo.value().num_nodes(), 2u);
  EXPECT_EQ(topo.value().nodes[0].id, 0u);
  EXPECT_EQ(topo.value().nodes[0].cpus, (std::vector<uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(topo.value().nodes[1].id, 1u);
  EXPECT_EQ(topo.value().nodes[1].cpus, (std::vector<uint32_t>{4, 5, 6, 7}));
  EXPECT_EQ(topo.value().num_cpus(), 8u);
}

TEST(TopologyTest, ParseFakeTopologySortsNodesById) {
  // Spec order must not leak into shard numbering.
  const auto topo = ParseFakeTopology("2:8-9;0:0-1;1:4-5");
  ASSERT_TRUE(topo.ok());
  ASSERT_EQ(topo.value().num_nodes(), 3u);
  EXPECT_EQ(topo.value().nodes[0].id, 0u);
  EXPECT_EQ(topo.value().nodes[1].id, 1u);
  EXPECT_EQ(topo.value().nodes[2].id, 2u);
}

TEST(TopologyTest, ParseFakeTopologyRejectsMalformedSpecs) {
  EXPECT_FALSE(ParseFakeTopology("").ok());
  EXPECT_FALSE(ParseFakeTopology("0:0;0:1").ok());  // duplicate node id
  EXPECT_FALSE(ParseFakeTopology("0:").ok());       // node without CPUs
  EXPECT_FALSE(ParseFakeTopology("0-3;4-7").ok());  // missing node prefix
  EXPECT_FALSE(ParseFakeTopology("x:0-3").ok());    // non-numeric node id
}

class SysfsFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::path(::testing::TempDir()) /
            ("ktg_sysfs_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  void AddNode(uint32_t id, const std::string& cpulist) {
    const auto dir = root_ / "node" / ("node" + std::to_string(id));
    std::filesystem::create_directories(dir);
    std::ofstream out(dir / "cpulist");
    out << cpulist << "\n";
  }

  std::filesystem::path root_;
};

TEST_F(SysfsFixture, ProbeReadsNodeCpulists) {
  AddNode(0, "0-1");
  AddNode(1, "2-3,6");
  const Topology topo = exec::ProbeSysfsTopology(root_.string());
  EXPECT_EQ(topo.source, Topology::Source::kSysfs);
  ASSERT_EQ(topo.num_nodes(), 2u);
  EXPECT_EQ(topo.nodes[0].cpus, (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(topo.nodes[1].cpus, (std::vector<uint32_t>{2, 3, 6}));
}

TEST_F(SysfsFixture, ProbeToleratesOfflinedNodeGaps) {
  // node1 missing (offlined): node2 must still be found.
  AddNode(0, "0-1");
  AddNode(2, "2-3");
  const Topology topo = exec::ProbeSysfsTopology(root_.string());
  ASSERT_EQ(topo.num_nodes(), 2u);
  EXPECT_EQ(topo.nodes[1].id, 2u);
}

TEST_F(SysfsFixture, ProbeFallsBackWhenNodeDirMissing) {
  const Topology topo = exec::ProbeSysfsTopology(root_.string());
  EXPECT_EQ(topo.source, Topology::Source::kFallback);
  ASSERT_EQ(topo.num_nodes(), 1u);
  EXPECT_GE(topo.num_cpus(), 1u);
}

// setenv-based: fine because gtest runs tests in one thread.
TEST(TopologyTest, DetectHonorsFakeEnvAndFallsThroughOnGarbage) {
  ::setenv("KTG_FAKE_TOPOLOGY", "0:0-1;1:2-3", 1);
  const Topology fake = exec::DetectTopology();
  EXPECT_EQ(fake.source, Topology::Source::kFake);
  EXPECT_EQ(fake.num_nodes(), 2u);

  ::setenv("KTG_FAKE_TOPOLOGY", "not-a-topology", 1);
  const Topology real = exec::DetectTopology();
  EXPECT_NE(real.source, Topology::Source::kFake);
  EXPECT_GE(real.num_nodes(), 1u);
  ::unsetenv("KTG_FAKE_TOPOLOGY");
}

Topology TwoNodeTopology() {
  Topology topo;
  topo.source = Topology::Source::kFake;
  topo.nodes.push_back(TopologyNode{0, {0, 1}});
  topo.nodes.push_back(TopologyNode{1, {2, 3}});
  return topo;
}

// ---------------------------------------------------------------------------
// Shard planning.

TEST(ShardPlanTest, ResolveShardCountAutoAndExplicit) {
  const Topology topo = TwoNodeTopology();
  EXPECT_EQ(ResolveShardCount(0, topo, 8), 2u);  // auto: one per node
  EXPECT_EQ(ResolveShardCount(0, topo, 1), 1u);  // clamped to workers
  EXPECT_EQ(ResolveShardCount(3, topo, 8), 3u);  // explicit wins over nodes
  EXPECT_EQ(ResolveShardCount(5, topo, 4), 4u);  // clamped to workers
  EXPECT_EQ(ResolveShardCount(2, topo, 0), 1u);  // zero workers -> 1
}

TEST(ShardPlanTest, PlanDealsWorkersEvenlyWithRemainderFirst) {
  const Topology topo = TwoNodeTopology();
  const ShardPlan plan = PlanShards(topo, 7, 3);
  ASSERT_EQ(plan.num_shards(), 3u);
  EXPECT_EQ(plan.total_workers(), 7u);
  // 7 workers over 3 shards: earlier shards absorb the remainder.
  EXPECT_EQ(plan.worker_counts(), (std::vector<uint32_t>{3, 2, 2}));
  // Shard i maps to node i mod num_nodes.
  EXPECT_EQ(plan.shards[0].node, 0u);
  EXPECT_EQ(plan.shards[1].node, 1u);
  EXPECT_EQ(plan.shards[2].node, 0u);
  EXPECT_EQ(plan.shards[2].cpus, topo.nodes[0].cpus);
}

TEST(ShardPlanTest, PlanIsDeterministic) {
  const Topology topo = TwoNodeTopology();
  const ShardPlan a = PlanShards(topo, 6, 0);
  const ShardPlan b = PlanShards(topo, 6, 0);
  ASSERT_EQ(a.num_shards(), b.num_shards());
  EXPECT_EQ(a.worker_counts(), b.worker_counts());
  for (uint32_t i = 0; i < a.num_shards(); ++i) {
    EXPECT_EQ(a.shards[i].node, b.shards[i].node);
    EXPECT_EQ(a.shards[i].cpus, b.shards[i].cpus);
  }
}

// ---------------------------------------------------------------------------
// ShardedPartition: exactly-once claims, ring-order stealing, CloseFrom.

TEST(ShardedPartitionTest, EveryIndexClaimedExactlyOnce) {
  ShardedPartition part(100, {2, 1, 1});
  std::vector<uint64_t> seen;
  uint64_t idx = 0;
  bool stolen = false;
  // Rotate the claiming home so every shard both drains its own range and
  // steals from the others.
  uint32_t home = 0;
  while (part.Claim(home, &idx, &stolen)) {
    seen.push_back(idx);
    home = (home + 1) % part.num_shards();
  }
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), 100u);
  for (uint64_t i = 0; i < 100; ++i) EXPECT_EQ(seen[i], i);
  EXPECT_EQ(part.steals() + part.local_claims(), 100u);
}

TEST(ShardedPartitionTest, RangesAreWeightProportionalAndTiling) {
  ShardedPartition part(100, {2, 1, 1});
  ASSERT_EQ(part.num_shards(), 3u);
  EXPECT_EQ(part.shard_begin(0), 0u);
  EXPECT_EQ(part.shard_end(0), 50u);  // weight 2 of 4
  EXPECT_EQ(part.shard_end(1), 75u);
  EXPECT_EQ(part.shard_end(2), 100u);
  // All-zero weights degrade to a single range.
  ShardedPartition flat(10, {0, 0});
  EXPECT_EQ(flat.num_shards(), 1u);
  EXPECT_EQ(flat.shard_end(0), 10u);
}

TEST(ShardedPartitionTest, HomeRangeDrainsBeforeStealing) {
  ShardedPartition part(40, {1, 1});
  uint64_t idx = 0;
  bool stolen = false;
  // Home 1 claims its own range [20, 40) first...
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(part.Claim(1, &idx, &stolen));
    EXPECT_GE(idx, 20u);
    EXPECT_FALSE(stolen);
  }
  // ...then steals shard 0's range in ring order.
  ASSERT_TRUE(part.Claim(1, &idx, &stolen));
  EXPECT_LT(idx, 20u);
  EXPECT_TRUE(stolen);
  EXPECT_EQ(part.steals(), 1u);
}

TEST(ShardedPartitionTest, ConcurrentClaimsAreExactlyOnce) {
  // The TSan-relevant property: hammering Claim from every shard at once
  // never duplicates or drops an index.
  constexpr uint64_t kItems = 4096;
  ShardedPartition part(kItems, {1, 1, 1, 1});
  std::vector<std::vector<uint64_t>> per_thread(4);
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < 4; ++t) {
    threads.emplace_back([&part, &per_thread, t] {
      uint64_t idx = 0;
      bool stolen = false;
      while (part.Claim(t, &idx, &stolen)) per_thread[t].push_back(idx);
    });
  }
  for (auto& t : threads) t.join();
  std::vector<uint64_t> all;
  for (const auto& v : per_thread) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), kItems);
  for (uint64_t i = 0; i < kItems; ++i) EXPECT_EQ(all[i], i);
}

// The regression test for the tail-closing claim rule: a failed monotone
// bound at index i must exclude every index >= i everywhere, while indices
// < i in *other* shards' ranges stay claimable. (The engines used to
// `break` out of the claim loop instead, which abandoned lower-index
// ranges reachable only by stealing — and returned wrong results whenever
// task pile-up left one worker to drain several ranges.)
TEST(ShardedPartitionTest, CloseFromExcludesTailKeepsEarlierRanges) {
  ShardedPartition part(100, {1, 1, 1, 1});  // ranges of 25
  uint64_t idx = 0;
  bool stolen = false;

  // A worker homed on shard 2 claims one index (50), "fails its bound"
  // there, and closes the tail.
  ASSERT_TRUE(part.Claim(2, &idx, &stolen));
  EXPECT_EQ(idx, 50u);
  part.CloseFrom(50);

  // Every remaining claim — from any home — lands strictly below the cut,
  // and all 50 surviving indices are still claimed exactly once.
  std::vector<uint64_t> seen;
  uint32_t home = 2;  // keep claiming from the closing worker's shard
  while (part.Claim(home, &idx, &stolen)) {
    EXPECT_LT(idx, 50u);
    seen.push_back(idx);
    home = (home + 1) % part.num_shards();
  }
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), 50u);
  for (uint64_t i = 0; i < 50; ++i) EXPECT_EQ(seen[i], i);
}

TEST(ShardedPartitionTest, CloseFromZeroDrainsEverything) {
  ShardedPartition part(64, {1, 1});
  part.CloseFrom(0);
  uint64_t idx = 0;
  bool stolen = false;
  EXPECT_FALSE(part.Claim(0, &idx, &stolen));
  EXPECT_FALSE(part.Claim(1, &idx, &stolen));
}

TEST(ShardedPartitionTest, CloseFromMidRangeCutsPartially) {
  ShardedPartition part(40, {1, 1});  // ranges [0,20) and [20,40)
  part.CloseFrom(30);                 // cuts half of shard 1's range
  std::vector<uint64_t> seen;
  uint64_t idx = 0;
  bool stolen = false;
  while (part.Claim(1, &idx, &stolen)) seen.push_back(idx);
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), 30u);
  EXPECT_EQ(seen.back(), 29u);
}

TEST(ShardedPartitionTest, CloseFromIsMonotone) {
  ShardedPartition part(40, {1, 1});
  part.CloseFrom(10);
  part.CloseFrom(30);  // raising the cut back up must not reopen the tail
  uint64_t idx = 0;
  bool stolen = false;
  uint64_t count = 0;
  while (part.Claim(0, &idx, &stolen)) {
    EXPECT_LT(idx, 10u);
    ++count;
  }
  EXPECT_EQ(count, 10u);
}

TEST(ShardedPartitionTest, CloseFromRacingClaimsStayExactlyOnce) {
  // Claimers race a closer: claims past a cut are allowed (benign, the
  // caller re-checks its bound) but duplicates never are, and indices
  // below the final cut must all be claimed.
  constexpr uint64_t kItems = 8192;
  constexpr uint64_t kCut = 1024;
  ShardedPartition part(kItems, {1, 1, 1, 1});
  std::vector<std::vector<uint64_t>> per_thread(4);
  std::vector<std::thread> threads;
  std::atomic<bool> closed{false};
  for (uint32_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      uint64_t idx = 0;
      bool stolen = false;
      while (part.Claim(t, &idx, &stolen)) {
        per_thread[t].push_back(idx);
        if (!closed.exchange(true)) part.CloseFrom(kCut);
      }
    });
  }
  for (auto& t : threads) t.join();
  std::vector<uint64_t> all;
  for (const auto& v : per_thread) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  // No duplicates, ever.
  EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end());
  // Everything below the cut was claimed (the close may only trim the
  // tail).
  std::set<uint64_t> claimed(all.begin(), all.end());
  for (uint64_t i = 0; i < kCut; ++i) {
    EXPECT_TRUE(claimed.count(i)) << "index " << i << " lost by CloseFrom";
  }
}

// ---------------------------------------------------------------------------
// ShardedTopN: replica merge equivalence and bound soundness.

Group MakeGroup(VertexId id, int coverage) {
  Group g;
  g.members = {id};
  g.mask = coverage >= 64 ? ~CoverMask{0} : (CoverMask{1} << coverage) - 1;
  return g;
}

std::vector<int> Profile(const std::vector<Group>& groups) {
  std::vector<int> p;
  p.reserve(groups.size());
  for (const auto& g : groups) p.push_back(g.covered());
  std::sort(p.rbegin(), p.rend());
  return p;
}

TEST(ShardedTopNTest, MergedProfileMatchesSingleCollector) {
  // Offer the same group stream round-robin across 3 replicas and all
  // into one TopNCollector: the merged coverage profile must be
  // identical — the bound-exchange exactness contract.
  const std::vector<int> coverages = {3, 1, 4, 1, 5, 2, 6, 5, 3, 5,
                                      8, 9, 7, 9, 3, 2, 3, 8, 4, 6};
  for (uint32_t n : {1u, 3u, 5u}) {
    ShardedTopN sharded(n, 3);
    TopNCollector single(n);
    for (size_t i = 0; i < coverages.size(); ++i) {
      const Group g = MakeGroup(static_cast<VertexId>(i), coverages[i]);
      sharded.Offer(static_cast<uint32_t>(i % 3), g);
      single.Offer(g);
    }
    EXPECT_EQ(Profile(sharded.Take()), Profile(single.Take()))
        << "n=" << n;
  }
}

TEST(ShardedTopNTest, GlobalBoundIsSoundAndPublishesOnImprove) {
  ShardedTopN topn(2, 2);
  EXPECT_EQ(topn.global_bound(), -1);

  // One group in shard 0: no replica holds N yet, bound stays -1.
  topn.Offer(0, MakeGroup(1, 5));
  EXPECT_EQ(topn.global_bound(), -1);

  // Second group fills shard 0's replica: its threshold (worst held
  // coverage = 3) becomes the global bound.
  topn.Offer(0, MakeGroup(2, 3));
  EXPECT_EQ(topn.global_bound(), 3);
  EXPECT_GE(topn.publishes(), 1u);

  // A weaker shard-1 replica must not drag the global bound down.
  topn.Offer(1, MakeGroup(3, 1));
  topn.Offer(1, MakeGroup(4, 1));
  EXPECT_EQ(topn.global_bound(), 3);

  // Improving shard 1 past shard 0 raises it.
  topn.Offer(1, MakeGroup(5, 7));
  topn.Offer(1, MakeGroup(6, 8));
  EXPECT_EQ(topn.global_bound(), 7);

  // The bound never exceeds the true merged N-th coverage.
  const auto merged = topn.Take();
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_LE(7, Profile(merged).back());
}

TEST(ShardedTopNTest, ViewSeesRemoteBoundAfterRefreshInterval) {
  constexpr uint32_t kInterval = 4;
  ShardedTopN topn(1, 2, kInterval);
  ShardedTopN::View view = topn.MakeView(0);
  EXPECT_EQ(view.threshold(), -1);

  // Shard 1 fills its replica; shard 0's slot is still empty, so the
  // view only learns the bound from its next epoch refresh.
  topn.Offer(1, MakeGroup(1, 6));
  EXPECT_EQ(topn.global_bound(), 6);
  int seen = -1;
  for (uint32_t i = 0; i < kInterval; ++i) seen = view.threshold();
  EXPECT_EQ(seen, 6);
  EXPECT_GE(topn.refreshes(), 1u);
  EXPECT_TRUE(view.full());
}

TEST(ShardedTopNTest, ViewOfferRefreshesForFree) {
  ShardedTopN topn(1, 2, /*refresh_interval=*/1000);
  ShardedTopN::View v0 = topn.MakeView(0);
  topn.Offer(1, MakeGroup(1, 6));
  // An Offer through the view refreshes its cached global bound without
  // burning the epoch countdown.
  v0.Offer(MakeGroup(2, 2));
  EXPECT_EQ(v0.threshold(), 6);
}

TEST(ShardedTopNTest, SeedGlobalWarmsBoundWithoutDoubleCounting) {
  std::vector<Group> seeds;
  for (int i = 0; i < 4; ++i) {
    seeds.push_back(MakeGroup(static_cast<VertexId>(i), 2 + i));
  }
  ShardedTopN topn(2, 2);
  topn.SeedGlobal(seeds);
  // N=2 seeds exist with coverage >= 4 (5 and 4): the bound is warm.
  EXPECT_EQ(topn.global_bound(), 4);
  // The merged result holds each seed at most once.
  const auto merged = topn.Take();
  EXPECT_EQ(Profile(merged), (std::vector<int>{5, 4}));
}

// ---------------------------------------------------------------------------
// ScratchArena.

TEST(ScratchArenaTest, AllocationsAreAlignedAndDisjoint) {
  ScratchArena arena;
  uint64_t* a = arena.AllocWords(100);
  uint64_t* b = arena.AllocWords(100);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % kCacheLineBytes, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % kCacheLineBytes, 0u);
  // Writing one allocation never touches the other.
  for (int i = 0; i < 100; ++i) a[i] = 0xA;
  for (int i = 0; i < 100; ++i) b[i] = 0xB;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a[i], 0xAu);
}

TEST(ScratchArenaTest, ZeroCountStillReturnsWritableWord) {
  ScratchArena arena;
  uint64_t* p = arena.AllocWords(0);
  ASSERT_NE(p, nullptr);
  *p = 42;  // callers never branch on emptiness
}

TEST(ScratchArenaTest, ResetRecyclesWithoutReallocating) {
  ScratchArena arena;
  arena.AllocWords(10000);
  arena.AllocWords(10000);
  const size_t reserved = arena.bytes_reserved();
  EXPECT_GT(reserved, 0u);
  // Steady state: the same allocation pattern after Reset reuses the
  // blocks — capacity must not grow.
  for (int round = 0; round < 8; ++round) {
    arena.Reset();
    arena.AllocWords(10000);
    arena.AllocWords(10000);
    EXPECT_EQ(arena.bytes_reserved(), reserved) << "round " << round;
  }
}

// ---------------------------------------------------------------------------
// ShardedThreadPool.

TEST(ShardedPoolTest, PlacesWorkersPerPlanAndRunsEverything) {
  const Topology topo = TwoNodeTopology();
  exec::ShardedPoolOptions opts;
  opts.num_threads = 4;
  opts.shards = 2;
  opts.topology = &topo;
  ShardedThreadPool pool(opts);
  EXPECT_EQ(pool.num_threads(), 4u);
  EXPECT_EQ(pool.num_shards(), 2u);
  EXPECT_EQ(pool.plan().worker_counts(), (std::vector<uint32_t>{2, 2}));
  for (uint32_t w = 0; w < 4; ++w) {
    EXPECT_EQ(pool.shard_of_worker(w), w / 2);
  }

  std::atomic<uint32_t> ran{0};
  std::atomic<uint32_t> bad_context{0};
  for (uint32_t i = 0; i < 64; ++i) {
    pool.Submit(i % 2, [&](const exec::WorkerContext& ctx) {
      if (ctx.worker >= 4 || ctx.shard >= 2 || ctx.arena == nullptr) {
        bad_context.fetch_add(1);
      }
      // Scratch must be usable inside every task.
      uint64_t* scratch = ctx.arena->AllocWords(256);
      scratch[0] = ctx.worker;
      ran.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 64u);
  EXPECT_EQ(bad_context.load(), 0u);
}

TEST(ShardedPoolTest, IdleShardStealsQueuedTasks) {
  const Topology topo = TwoNodeTopology();
  exec::ShardedPoolOptions opts;
  opts.num_threads = 4;
  opts.shards = 2;
  opts.topology = &topo;
  ShardedThreadPool pool(opts);
  // Everything lands on shard 0's queue; shard 1's workers must still
  // drain it (ring-order queue stealing) rather than idling forever.
  std::atomic<uint32_t> ran{0};
  for (uint32_t i = 0; i < 128; ++i) {
    pool.Submit(0, [&](const exec::WorkerContext&) { ran.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 128u);
}

TEST(ShardedPoolTest, WaitIsReusableAcrossBatches) {
  const Topology topo = TwoNodeTopology();
  exec::ShardedPoolOptions opts;
  opts.num_threads = 2;
  opts.topology = &topo;
  ShardedThreadPool pool(opts);
  std::atomic<uint32_t> ran{0};
  for (int batch = 0; batch < 4; ++batch) {
    for (uint32_t i = 0; i < 16; ++i) {
      pool.Submit(i, [&](const exec::WorkerContext&) { ran.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(ran.load(), (batch + 1) * 16u);
  }
}

// ---------------------------------------------------------------------------
// Parallel conflict-graph construction: bit-identical to serial.

TEST(ShardedConflictBuildTest, PooledBallWalkMatchesSerial) {
  Rng rng(0xEC51);
  const Topology topo = TwoNodeTopology();
  for (int round = 0; round < 4; ++round) {
    const AttributedGraph g =
        AssignKeywords(round % 2 == 0 ? ErdosRenyi(80, 0.05, rng)
                                      : BarabasiAlbert(90, 2, rng),
                       KeywordModel{}, rng);
    const auto k = static_cast<HopDistance>(1 + round % 3);
    std::vector<Candidate> cands;
    for (VertexId v = 0; v < g.num_vertices(); v += 2) {
      Candidate c;
      c.vertex = v;
      cands.push_back(c);
    }

    BfsChecker bfs(g.graph());
    const ConflictAdjacency serial = BuildConflictAdjacency(
        g.graph(), bfs, cands, k, ConflictBuild::kBallWalk);

    exec::ShardedPoolOptions popts;
    popts.num_threads = 4;
    popts.shards = 2;
    popts.topology = &topo;
    ShardedThreadPool pool(popts);
    const ConflictAdjacency pooled = BuildConflictAdjacency(
        g.graph(), bfs, cands, k, ConflictBuild::kBallWalk, &pool);

    EXPECT_EQ(serial.edges, pooled.edges) << "round " << round;
    ASSERT_EQ(serial.adj.size(), pooled.adj.size());
    for (size_t i = 0; i < serial.adj.size(); ++i) {
      EXPECT_TRUE(serial.adj[i] == pooled.adj[i])
          << "round " << round << " row " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end exactness: sharded search == unsharded == brute force at
// every threads x shards x pinning combination. This sweep is the
// regression net for the CloseFrom rule above — the pinned oversubscribed
// configs are exactly the ones where the old `break` lost results.

struct ShardConfig {
  uint32_t threads;
  uint32_t shards;
  bool pin;
};

class ShardedEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardedEquivalenceTest, MatchesBruteForceAtEveryShardCount) {
  const int round = GetParam();
  Rng rng(0xEC60 + round * 131);

  Graph topo_graph;
  switch (round % 3) {
    case 0:
      topo_graph = ErdosRenyi(34, 0.08, rng);
      break;
    case 1:
      topo_graph = BarabasiAlbert(36, 2, rng);
      break;
    default:
      topo_graph = WattsStrogatz(32, 2, 0.2, rng);
      break;
  }
  KeywordModel model;
  model.vocabulary_size = 12;
  model.min_per_vertex = 1;
  model.max_per_vertex = 3;
  model.empty_fraction = 0.1;
  const AttributedGraph g = AssignKeywords(std::move(topo_graph), model, rng);
  const InvertedIndex idx(g);

  WorkloadOptions wopts;
  wopts.num_queries = 2;
  wopts.keyword_count = 4 + round % 3;
  wopts.group_size = 2 + round % 3;
  wopts.tenuity = static_cast<HopDistance>(1 + round % 2);
  wopts.top_n = 1 + round % 4;
  const auto queries = GenerateWorkload(g, wopts, rng);

  // threads x shards x pin: shards=1 is the shared-bound baseline, the
  // oversubscribed pinned configs are the CloseFrom regression columns
  // (on small CI machines pinning piles every task onto few CPUs).
  const std::vector<ShardConfig> configs = {
      {2, 1, false}, {2, 2, false}, {4, 2, false}, {4, 4, false},
      {4, 2, true},  {8, 4, true},
  };

  for (const auto& query : queries) {
    BfsChecker ref_checker(g.graph());
    const auto truth = BruteForceKtg(g, idx, ref_checker, query);
    ASSERT_TRUE(truth.ok());
    const auto expected = Profile(truth->groups);

    for (const auto& cfg : configs) {
      auto checker = MakeChecker(CheckerKind::kNlrnl, g.graph(), query.tenuity);
      EngineOptions opts;
      opts.num_threads = cfg.threads;
      opts.shards = cfg.shards;
      opts.pin_threads = cfg.pin;
      const auto got = RunKtg(g, idx, *checker, query, opts);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(Profile(got->groups), expected)
          << "engine=ktg t=" << cfg.threads << " s=" << cfg.shards
          << " pin=" << cfg.pin << " round=" << round
          << " p=" << query.group_size << " k=" << int{query.tenuity}
          << " N=" << query.top_n;

      auto cchecker =
          MakeChecker(CheckerKind::kKHopBitmap, g.graph(), query.tenuity);
      ConflictEngineOptions copts;
      copts.num_threads = cfg.threads;
      copts.shards = cfg.shards;
      copts.pin_threads = cfg.pin;
      const auto cgot = RunKtgConflictGraph(g, idx, *cchecker, query, copts);
      ASSERT_TRUE(cgot.ok());
      EXPECT_EQ(Profile(cgot->groups), expected)
          << "engine=conflict t=" << cfg.threads << " s=" << cfg.shards
          << " pin=" << cfg.pin << " round=" << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, ShardedEquivalenceTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace ktg
