// Copyright (c) 2026 The ktg Authors.
// Candidate extraction tests: keyword filtering, the multi-query-vertex
// ("authors") exclusion of Section IV's Discussion, and DKTG's exact
// exclusion list.

#include <gtest/gtest.h>

#include "core/candidates.h"
#include "core/paper_example.h"
#include "index/bfs_checker.h"
#include "keywords/inverted_index.h"

namespace ktg {
namespace {

class CandidatesTest : public ::testing::Test {
 protected:
  CandidatesTest()
      : graph_(PaperExampleGraph()),
        index_(graph_),
        checker_(graph_.graph()),
        query_(PaperExampleQuery(graph_)) {}

  AttributedGraph graph_;
  InvertedIndex index_;
  BfsChecker checker_;
  KtgQuery query_;
};

TEST_F(CandidatesTest, OnlyKeywordCoveringVertices) {
  const auto cands = ExtractCandidates(graph_, index_, query_, checker_);
  std::vector<VertexId> ids;
  for (const auto& c : cands) ids.push_back(c.vertex);
  // u8 (ML) and u9 (IR) cover no query keyword; everyone else qualifies.
  EXPECT_EQ(ids, (std::vector<VertexId>{0, 1, 2, 3, 4, 5, 6, 7, 10, 11}));
  for (const auto& c : cands) {
    EXPECT_GT(PopCount(c.mask), 0);
    EXPECT_EQ(c.degree, graph_.graph().Degree(c.vertex));
    EXPECT_EQ(c.vkc, PopCount(c.mask));
  }
}

TEST_F(CandidatesTest, QueryVerticesExcludeTheirNeighborhood) {
  query_.query_vertices = {0};  // u0 is an "author"; k = 1
  uint64_t removed = 0;
  const auto cands =
      ExtractCandidates(graph_, index_, query_, checker_, &removed);
  std::vector<VertexId> ids;
  for (const auto& c : cands) ids.push_back(c.vertex);
  // Excluded: u0 itself plus its neighbors u1, u2, u3, u4, u11 (u9 covers
  // no keyword anyway).
  EXPECT_EQ(ids, (std::vector<VertexId>{5, 6, 7, 10}));
  EXPECT_EQ(removed, 6u);
}

TEST_F(CandidatesTest, LargerTenuityExcludesMore) {
  query_.query_vertices = {8};
  query_.tenuity = 2;
  const auto cands = ExtractCandidates(graph_, index_, query_, checker_);
  std::vector<VertexId> ids;
  for (const auto& c : cands) ids.push_back(c.vertex);
  // u8's <=2-ball is {0, 3, 4, 6, 7}; candidates lose those.
  EXPECT_EQ(ids, (std::vector<VertexId>{1, 2, 5, 10, 11}));
}

TEST_F(CandidatesTest, ExcludedVerticesAreExact) {
  query_.excluded_vertices = {10, 1, 10};  // duplicates tolerated
  const auto cands = ExtractCandidates(graph_, index_, query_, checker_);
  for (const auto& c : cands) {
    EXPECT_NE(c.vertex, 10u);
    EXPECT_NE(c.vertex, 1u);
  }
  EXPECT_EQ(cands.size(), 8u);
}

TEST_F(CandidatesTest, EmptyWhenNoKeywordMatches) {
  query_.keywords = {kInvalidKeyword, kInvalidKeyword};
  const auto cands = ExtractCandidates(graph_, index_, query_, checker_);
  EXPECT_TRUE(cands.empty());
}

}  // namespace
}  // namespace ktg
