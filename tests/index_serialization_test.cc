// Copyright (c) 2026 The ktg Authors.
// Persistence tests for NL/NLRNL: save → load round trips answer
// identically to the original (including memoized NL expansions and
// post-load dynamic updates), and corrupt/truncated/mismatched files fail
// with a Status instead of crashing.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "datagen/generators.h"
#include "index/nl_index.h"
#include "index/nlrnl_index.h"
#include "index/serialization.h"
#include "util/rng.h"

namespace ktg {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

template <typename A, typename B>
void ExpectSameAnswers(A& a, B& b, const Graph& g, uint64_t seed) {
  Rng rng(seed);
  for (int trial = 0; trial < 800; ++trial) {
    const auto u = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const auto v = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const auto k = static_cast<HopDistance>(rng.Below(6));
    ASSERT_EQ(a.IsFartherThan(u, v, k), b.IsFartherThan(u, v, k))
        << "u=" << u << " v=" << v << " k=" << k;
  }
}

TEST(IndexSerializationTest, NlRoundTrip) {
  Rng rng(0x5e1);
  const Graph g = BarabasiAlbert(150, 3, rng);
  NlIndex original(g);
  const std::string path = TempPath("ktg_nl.idx");
  ASSERT_TRUE(SaveNlIndex(original, path).ok());

  auto loaded = LoadNlIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->graph().EdgeList(), g.EdgeList());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(loaded->base_hops(v), original.base_hops(v));
    EXPECT_EQ(loaded->stored_hops(v), original.stored_hops(v));
  }
  ExpectSameAnswers(original, *loaded, g, 1);
  std::remove(path.c_str());
}

TEST(IndexSerializationTest, NlRoundTripPreservesMemoizedExpansions) {
  NlIndexOptions opts;
  opts.max_stored_hops = 1;
  NlIndex original(PathGraph(30), opts);
  // Force expansions before saving.
  original.IsFartherThan(0, 15, 10);
  const uint32_t grown = original.stored_hops(15);
  ASSERT_GT(grown, 1u);

  const std::string path = TempPath("ktg_nl_memo.idx");
  ASSERT_TRUE(SaveNlIndex(original, path).ok());
  auto loaded = LoadNlIndex(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->stored_hops(15), grown);
  ExpectSameAnswers(original, *loaded, original.graph(), 2);
  std::remove(path.c_str());
}

TEST(IndexSerializationTest, NlrnlRoundTrip) {
  Rng rng(0x5e2);
  // Include a disconnected piece: component labels must be rebuilt on load.
  GraphBuilder b(140);
  const Graph ba = BarabasiAlbert(120, 3, rng);
  for (const auto& [u, v] : ba.EdgeList()) b.AddEdge(u, v);
  b.AddEdge(125, 126);
  b.AddEdge(126, 127);
  const Graph g = b.Build();

  NlrnlIndex original(g);
  const std::string path = TempPath("ktg_nlrnl.idx");
  ASSERT_TRUE(SaveNlrnlIndex(original, path).ok());

  auto loaded = LoadNlrnlIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(loaded->c_value(v), original.c_value(v));
    EXPECT_EQ(loaded->num_forward_levels(v), original.num_forward_levels(v));
    EXPECT_EQ(loaded->num_reverse_levels(v), original.num_reverse_levels(v));
  }
  ExpectSameAnswers(original, *loaded, g, 3);
  EXPECT_TRUE(loaded->IsFartherThan(0, 126, 50));  // cross-component
  std::remove(path.c_str());
}

TEST(IndexSerializationTest, LoadedIndexSupportsUpdates) {
  Rng rng(0x5e3);
  const Graph g = ErdosRenyi(50, 0.08, rng);
  NlrnlIndex original(g);
  const std::string path = TempPath("ktg_nlrnl_upd.idx");
  ASSERT_TRUE(SaveNlrnlIndex(original, path).ok());
  auto loaded = LoadNlrnlIndex(path);
  ASSERT_TRUE(loaded.ok());

  loaded->InsertEdge(0, 49);
  original.InsertEdge(0, 49);
  ExpectSameAnswers(original, *loaded, original.graph(), 4);
  std::remove(path.c_str());
}

TEST(IndexSerializationTest, MissingFileFails) {
  EXPECT_FALSE(LoadNlIndex("/nonexistent/x.idx").ok());
  EXPECT_FALSE(LoadNlrnlIndex("/nonexistent/x.idx").ok());
}

TEST(IndexSerializationTest, WrongKindRejected) {
  NlIndex nl(PathGraph(10));
  const std::string path = TempPath("ktg_kind.idx");
  ASSERT_TRUE(SaveNlIndex(nl, path).ok());
  const auto r = LoadNlrnlIndex(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(IndexSerializationTest, GarbageRejected) {
  const std::string path = TempPath("ktg_garbage.idx");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not an index";
  }
  EXPECT_FALSE(LoadNlIndex(path).ok());
  std::remove(path.c_str());
}

TEST(IndexSerializationTest, TruncationDetected) {
  NlrnlIndex idx(CycleGraph(20));
  const std::string path = TempPath("ktg_trunc.idx");
  ASSERT_TRUE(SaveNlrnlIndex(idx, path).ok());
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 7);
  const auto r = LoadNlrnlIndex(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(IndexSerializationTest, BitFlipDetected) {
  NlIndex idx(GridGraph(5, 5));
  const std::string path = TempPath("ktg_flip.idx");
  ASSERT_TRUE(SaveNlIndex(idx, path).ok());
  // Flip one byte in the middle of the payload.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(64);
    char c = 0;
    f.seekg(64);
    f.read(&c, 1);
    c ^= 0x40;
    f.seekp(64);
    f.write(&c, 1);
  }
  const auto r = LoadNlIndex(path);
  EXPECT_FALSE(r.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ktg
