// Copyright (c) 2026 The ktg Authors.
// KTG engine behaviour tests on the paper's running example plus targeted
// feature tests (stop conditions, stats, query-vertex extension). The
// exhaustive engine-vs-brute-force property sweep lives in
// engine_equivalence_test.cc.

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/ktg_engine.h"
#include "core/paper_example.h"
#include "datagen/generators.h"
#include "datagen/keyword_assigner.h"
#include "index/bfs_checker.h"
#include "index/nlrnl_index.h"

namespace ktg {
namespace {

class KtgEngineTest : public ::testing::Test {
 protected:
  KtgEngineTest()
      : graph_(PaperExampleGraph()),
        index_(graph_),
        checker_(graph_.graph()),
        query_(PaperExampleQuery(graph_)) {}

  AttributedGraph graph_;
  InvertedIndex index_;
  BfsChecker checker_;
  KtgQuery query_;
};

TEST_F(KtgEngineTest, PaperExampleAllStrategies) {
  for (const auto sort :
       {SortStrategy::kQkc, SortStrategy::kVkc, SortStrategy::kVkcDeg}) {
    EngineOptions opts;
    opts.sort = sort;
    const auto r = RunKtg(graph_, index_, checker_, query_, opts);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->groups.size(), 2u) << SortStrategyName(sort);
    EXPECT_EQ(r->groups[0].covered(), 4) << SortStrategyName(sort);
    EXPECT_EQ(r->groups[1].covered(), 4) << SortStrategyName(sort);
    for (const auto& grp : r->groups) {
      EXPECT_EQ(grp.members.size(), 3u);
      EXPECT_TRUE(IsKDistanceGroup(grp.members, query_.tenuity, checker_));
      for (const VertexId m : grp.members) {
        EXPECT_GT(PopCount(CoverMaskOf(graph_, m, query_.keywords)), 0)
            << "member " << m << " covers no query keyword";
      }
    }
  }
}

TEST_F(KtgEngineTest, StatsArePopulated) {
  const auto r = RunKtg(graph_, index_, checker_, query_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.candidates, 10u);
  EXPECT_GT(r->stats.nodes_expanded, 0u);
  EXPECT_GT(r->stats.groups_completed, 0u);
  EXPECT_GT(r->stats.distance_checks, 0u);
  EXPECT_GE(r->stats.elapsed_ms, 0.0);
}

TEST_F(KtgEngineTest, PruningReducesWork) {
  EngineOptions with;
  EngineOptions without;
  without.keyword_pruning = false;
  const auto a = RunKtg(graph_, index_, checker_, query_, with);
  const auto b = RunKtg(graph_, index_, checker_, query_, without);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LE(a->stats.nodes_expanded, b->stats.nodes_expanded);
  // Same answer quality either way.
  EXPECT_EQ(a->groups[0].covered(), b->groups[0].covered());
}

TEST_F(KtgEngineTest, LazyKlineMatchesEager) {
  EngineOptions lazy;
  lazy.eager_kline_filtering = false;
  const auto a = RunKtg(graph_, index_, checker_, query_);
  const auto b = RunKtg(graph_, index_, checker_, query_, lazy);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->groups.size(), b->groups.size());
  for (size_t i = 0; i < a->groups.size(); ++i) {
    EXPECT_EQ(a->groups[i].covered(), b->groups[i].covered());
  }
}

TEST_F(KtgEngineTest, MaxNodesTruncates) {
  EngineOptions opts;
  opts.max_nodes = 2;
  KtgEngine engine(graph_, index_, checker_, opts);
  const auto r = engine.Run(query_);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(engine.last_run_complete());
}

TEST_F(KtgEngineTest, StopAtCountShortCircuits) {
  EngineOptions opts;
  opts.stop_at_count = 1;  // any feasible group suffices
  KtgQuery q = query_;
  q.top_n = 1;
  KtgEngine engine(graph_, index_, checker_, opts);
  const auto r = engine.Run(q);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->groups.size(), 1u);
  EXPECT_FALSE(engine.last_run_complete());
  EXPECT_GE(r->groups[0].covered(), 1);
}

TEST_F(KtgEngineTest, QueryVertexExtension) {
  // With u10 and u0 both "authors", every candidate near them drops out but
  // a feasible (lower-coverage) group must still be found.
  KtgQuery q = query_;
  q.query_vertices = {10, 0};
  const auto r = RunKtg(graph_, index_, checker_, q);
  ASSERT_TRUE(r.ok());
  for (const auto& grp : r->groups) {
    for (const VertexId m : grp.members) {
      EXPECT_NE(m, 10u);
      EXPECT_NE(m, 0u);
      EXPECT_TRUE(checker_.IsFartherThan(m, 10, q.tenuity));
      EXPECT_TRUE(checker_.IsFartherThan(m, 0, q.tenuity));
    }
  }
  // Best possible without u10/u0's neighborhoods is below 4.
  if (!r->groups.empty()) {
    EXPECT_LT(r->groups[0].covered(), 4);
  }
}

TEST_F(KtgEngineTest, LargerTenuityShrinksOrEqualsCoverage) {
  KtgQuery q2 = query_;
  q2.tenuity = 2;
  const auto r1 = RunKtg(graph_, index_, checker_, query_);
  const auto r2 = RunKtg(graph_, index_, checker_, q2);
  ASSERT_TRUE(r1.ok() && r2.ok());
  const int best1 = r1->groups.empty() ? 0 : r1->groups[0].covered();
  const int best2 = r2->groups.empty() ? 0 : r2->groups[0].covered();
  // Property 1: 2-distance groups are 1-distance groups, so the optimum can
  // only drop when k grows.
  EXPECT_LE(best2, best1);
}

TEST_F(KtgEngineTest, WorksWithNlrnlChecker) {
  NlrnlIndex nlrnl(graph_.graph());
  const auto a = RunKtg(graph_, index_, checker_, query_);
  const auto b = RunKtg(graph_, index_, nlrnl, query_);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->groups.size(), b->groups.size());
  for (size_t i = 0; i < a->groups.size(); ++i) {
    EXPECT_EQ(a->groups[i].covered(), b->groups[i].covered());
  }
}

TEST_F(KtgEngineTest, TopNLargerThanFeasibleSet) {
  KtgQuery q = query_;
  q.top_n = 1000;
  const auto r = RunKtg(graph_, index_, checker_, q);
  ASSERT_TRUE(r.ok());
  // Returns every feasible group, ordered by coverage.
  EXPECT_GT(r->groups.size(), 2u);
  for (size_t i = 1; i < r->groups.size(); ++i) {
    EXPECT_GE(r->groups[i - 1].covered(), r->groups[i].covered());
  }
}

TEST_F(KtgEngineTest, GroupSizeLargerThanCandidatesIsEmpty) {
  KtgQuery q = query_;
  q.group_size = 11;  // only 10 candidates exist
  const auto r = RunKtg(graph_, index_, checker_, q);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->groups.empty());
}

TEST_F(KtgEngineTest, BulkFilteringMatchesPerPair) {
  EngineOptions bulk;
  bulk.bulk_filtering = true;
  EngineOptions per_pair;
  per_pair.bulk_filtering = false;
  // BFS checker is the one with a bulk path; answers must be identical.
  BfsChecker c1(graph_.graph()), c2(graph_.graph());
  const auto a = RunKtg(graph_, index_, c1, query_, bulk);
  const auto b = RunKtg(graph_, index_, c2, query_, per_pair);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->groups.size(), b->groups.size());
  for (size_t i = 0; i < a->groups.size(); ++i) {
    EXPECT_EQ(a->groups[i].members, b->groups[i].members);
  }
  // The bulk path must do fewer per-pair distance checks.
  EXPECT_LT(a->stats.distance_checks, b->stats.distance_checks);
}

TEST_F(KtgEngineTest, DegreeTieBreakDirectionsBothExact) {
  EngineOptions desc;
  desc.degree_ascending = false;
  const auto a = RunKtg(graph_, index_, checker_, query_);
  const auto b = RunKtg(graph_, index_, checker_, query_, desc);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->groups[0].covered(), b->groups[0].covered());
}

}  // namespace
}  // namespace ktg
