// Copyright (c) 2026 The ktg Authors.
// ThreadPool contract tests: inline execution for tiny pools, chunk
// coverage of ParallelFor (empty range, grain larger than the range,
// uneven splits), exception propagation, and reuse across waves.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.h"

namespace ktg {
namespace {

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1u);
  EXPECT_EQ(ThreadPool::Resolve(0), ThreadPool::HardwareThreads());
  EXPECT_EQ(ThreadPool::Resolve(3), 3u);
}

TEST(ThreadPoolTest, SizeOnePoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> runs{0};
  pool.Submit([&] { ++runs; });
  // Inline execution: the task already ran when Submit returned.
  EXPECT_EQ(runs.load(), 1);
  pool.Wait();
  EXPECT_EQ(runs.load(), 1);
}

TEST(ThreadPoolTest, SubmitAndWaitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> runs{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { runs.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(runs.load(), 100);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> runs{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) pool.Submit([&] { runs.fetch_add(1); });
    pool.Wait();
    EXPECT_EQ(runs.load(), (wave + 1) * 20);
  }
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (const uint32_t threads : {1u, 2u, 4u}) {
    for (const uint64_t grain : {1ull, 3ull, 7ull, 1000ull}) {
      ThreadPool pool(threads);
      std::vector<std::atomic<int>> hits(257);
      for (auto& h : hits) h.store(0);
      pool.ParallelFor(0, hits.size(), grain,
                       [&](uint64_t begin, uint64_t end) {
                         ASSERT_LE(begin, end);
                         for (uint64_t i = begin; i < end; ++i) {
                           hits[i].fetch_add(1);
                         }
                       });
      for (size_t i = 0; i < hits.size(); ++i) {
        EXPECT_EQ(hits[i].load(), 1)
            << "i=" << i << " threads=" << threads << " grain=" << grain;
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForEmptyRangeNeverInvokesBody) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(10, 10, 4, [&](uint64_t, uint64_t) { ++calls; });
  pool.ParallelFor(10, 10, 0, [&](uint64_t, uint64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ParallelForGrainLargerThanRangeIsOneChunk) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  uint64_t seen_begin = 99, seen_end = 0;
  pool.ParallelFor(2, 7, 1000, [&](uint64_t begin, uint64_t end) {
    ++calls;
    seen_begin = begin;
    seen_end = end;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen_begin, 2u);
  EXPECT_EQ(seen_end, 7u);
}

TEST(ThreadPoolTest, ParallelForZeroGrainIsClampedToOne) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(9);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(0, hits.size(), 0, [&](uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForPropagatesExceptions) {
  for (const uint32_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.ParallelFor(0, 64, 4,
                         [&](uint64_t begin, uint64_t) {
                           if (begin >= 32) {
                             throw std::runtime_error("boom");
                           }
                         }),
        std::runtime_error);
    // The pool survives a throwing wave and keeps working.
    std::atomic<int> runs{0};
    pool.ParallelFor(0, 8, 2, [&](uint64_t begin, uint64_t end) {
      runs.fetch_add(static_cast<int>(end - begin));
    });
    EXPECT_EQ(runs.load(), 8);
  }
}

TEST(ThreadPoolTest, ParallelSumMatchesSerial) {
  constexpr uint64_t kN = 10000;
  std::vector<uint64_t> values(kN);
  std::iota(values.begin(), values.end(), 1);
  const uint64_t expected =
      std::accumulate(values.begin(), values.end(), uint64_t{0});

  ThreadPool pool(4);
  std::atomic<uint64_t> total{0};
  pool.ParallelFor(0, kN, 128, [&](uint64_t begin, uint64_t end) {
    uint64_t local = 0;
    for (uint64_t i = begin; i < end; ++i) local += values[i];
    total.fetch_add(local);
  });
  EXPECT_EQ(total.load(), expected);
}

}  // namespace
}  // namespace ktg
