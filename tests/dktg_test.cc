// Copyright (c) 2026 The ktg Authors.
// DKTG-Greedy tests: disjointness (the diversity mechanism), coverage
// monotonicity across rounds, the fallback strategy, score accounting and
// the approximation-ratio sanity bound of Section VI.C.

#include <gtest/gtest.h>

#include "core/dktg_greedy.h"
#include "core/diversity.h"
#include "core/ktg_engine.h"
#include "core/paper_example.h"
#include "datagen/generators.h"
#include "datagen/keyword_assigner.h"
#include "datagen/query_gen.h"
#include "index/bfs_checker.h"
#include "keywords/inverted_index.h"

namespace ktg {
namespace {

class DktgTest : public ::testing::Test {
 protected:
  DktgTest()
      : graph_(PaperExampleGraph()),
        index_(graph_),
        checker_(graph_.graph()),
        query_(PaperExampleQuery(graph_)) {}

  AttributedGraph graph_;
  InvertedIndex index_;
  BfsChecker checker_;
  KtgQuery query_;
};

TEST_F(DktgTest, GroupsArePairwiseDisjoint) {
  const auto r = RunDktgGreedy(graph_, index_, checker_, query_);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->groups.size(), 2u);
  for (size_t i = 0; i < r->groups.size(); ++i) {
    for (size_t j = i + 1; j < r->groups.size(); ++j) {
      EXPECT_DOUBLE_EQ(GroupJaccardDistance(r->groups[i], r->groups[j]), 1.0);
    }
  }
  EXPECT_DOUBLE_EQ(r->diversity, 1.0);
}

TEST_F(DktgTest, FirstGroupIsOptimal) {
  const auto dktg = RunDktgGreedy(graph_, index_, checker_, query_);
  ASSERT_TRUE(dktg.ok());
  // Round 1 has no exclusions: its group must reach the KTG optimum (4/5).
  EXPECT_EQ(dktg->groups.front().covered(), 4);
}

TEST_F(DktgTest, CoverageIsNonIncreasingAcrossRounds) {
  KtgQuery q = query_;
  q.top_n = 3;
  const auto r = RunDktgGreedy(graph_, index_, checker_, q);
  ASSERT_TRUE(r.ok());
  for (size_t i = 1; i < r->groups.size(); ++i) {
    EXPECT_LE(r->groups[i].covered(), r->groups[i - 1].covered());
  }
}

TEST_F(DktgTest, MembersSatisfyAllKtgConstraints) {
  const auto r = RunDktgGreedy(graph_, index_, checker_, query_);
  ASSERT_TRUE(r.ok());
  for (const auto& grp : r->groups) {
    EXPECT_EQ(grp.members.size(), query_.group_size);
    for (size_t i = 0; i < grp.members.size(); ++i) {
      EXPECT_GT(PopCount(CoverMaskOf(graph_, grp.members[i], query_.keywords)),
                0);
      for (size_t j = i + 1; j < grp.members.size(); ++j) {
        EXPECT_TRUE(checker_.IsFartherThan(grp.members[i], grp.members[j],
                                           query_.tenuity));
      }
    }
  }
}

TEST_F(DktgTest, StopsWhenCandidatesRunOut) {
  KtgQuery q = query_;
  q.top_n = 50;  // far more than disjoint groups exist (10 candidates / 3)
  const auto r = RunDktgGreedy(graph_, index_, checker_, q);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->groups.size(), 3u);
  EXPECT_GE(r->groups.size(), 1u);
}

TEST_F(DktgTest, ScoreMatchesDefinition) {
  DktgOptions opts;
  opts.gamma = 0.3;
  const auto r = RunDktgGreedy(graph_, index_, checker_, query_, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(
      r->score, DktgScore(r->groups, r->query_keyword_count, opts.gamma));
  EXPECT_DOUBLE_EQ(r->score,
                   0.3 * r->min_coverage + 0.7 * r->diversity);
}

TEST_F(DktgTest, GammaOutOfRangeRejected) {
  DktgOptions opts;
  opts.gamma = 1.5;
  EXPECT_FALSE(RunDktgGreedy(graph_, index_, checker_, query_, opts).ok());
}

TEST_F(DktgTest, EarlyStopAndFullSearchAgreeOnScoreBounds) {
  DktgOptions fast;
  fast.early_stop = true;
  DktgOptions full;
  full.early_stop = false;
  const auto a = RunDktgGreedy(graph_, index_, checker_, query_, fast);
  const auto b = RunDktgGreedy(graph_, index_, checker_, query_, full);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->groups.size(), b->groups.size());
  // The full search's first group is optimal; early stop's first round runs
  // with stop_at_count == 0 so it is optimal too.
  EXPECT_EQ(a->groups.front().covered(), b->groups.front().covered());
}

TEST_F(DktgTest, ApproximationRatioBound) {
  // Section VI.C: score >= 1 - γ(|W_Q|-1)/|W_Q| when diversity is perfect
  // and every member covers >= 1 keyword. Check the reported score against
  // the analytical floor.
  DktgOptions opts;
  opts.gamma = 0.5;
  const auto r = RunDktgGreedy(graph_, index_, checker_, query_, opts);
  ASSERT_TRUE(r.ok());
  const double wq = r->query_keyword_count;
  const double floor = 1.0 - opts.gamma * (wq - 1.0) / wq;
  EXPECT_GE(r->score, floor - 1e-12);
}

TEST(DktgRandomTest, DiversityBeatsPlainKtgTopN) {
  // On random instances the diversified result set is (weakly) more
  // diverse than the plain KTG top-N for the same query.
  Rng rng(0xD1);
  KeywordModel model;
  model.vocabulary_size = 15;
  model.min_per_vertex = 1;
  model.max_per_vertex = 3;
  const AttributedGraph g =
      AssignKeywords(BarabasiAlbert(60, 2, rng), model, rng);
  const InvertedIndex idx(g);

  WorkloadOptions wopts;
  wopts.num_queries = 5;
  wopts.keyword_count = 5;
  wopts.group_size = 3;
  wopts.tenuity = 1;
  wopts.top_n = 3;
  for (const auto& query : GenerateWorkload(g, wopts, rng)) {
    BfsChecker c1(g.graph()), c2(g.graph());
    const auto ktg = RunKtg(g, idx, c1, query);
    const auto dktg = RunDktgGreedy(g, idx, c2, query);
    ASSERT_TRUE(ktg.ok() && dktg.ok());
    if (dktg->groups.size() == query.top_n &&
        ktg->groups.size() == query.top_n) {
      EXPECT_GE(dktg->diversity + 1e-12, AverageDiversity(ktg->groups));
    }
  }
}

}  // namespace
}  // namespace ktg
