// Copyright (c) 2026 The ktg Authors.
// NLRNL index tests: c selection, forward/reverse level structure, halved
// storage, component handling and the "absence means distance exactly c"
// completeness property.

#include <gtest/gtest.h>

#include "datagen/generators.h"
#include "graph/bfs.h"
#include "index/nl_index.h"
#include "index/nlrnl_index.h"
#include "util/rng.h"
#include "util/sorted_vector.h"

namespace ktg {
namespace {

TEST(NlrnlIndexTest, CIsAtLeastTwo) {
  Rng rng(71);
  const Graph g = BarabasiAlbert(150, 3, rng);
  const NlrnlIndex idx(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_GE(idx.c_value(v), 2u);
    EXPECT_LE(idx.c_value(v), 8u);
  }
}

TEST(NlrnlIndexTest, CIsArgmaxLevelAmongDeepLevels) {
  Rng rng(73);
  const Graph g = WattsStrogatz(200, 2, 0.05, rng);
  const NlrnlIndex idx(g);
  BoundedBfs bfs(g);
  for (VertexId v = 0; v < g.num_vertices(); v += 19) {
    const auto levels = bfs.Levels(v, kUnreachable - 1);
    uint32_t c = 2;
    size_t best = 0;
    for (uint32_t level = 2; level <= levels.size() && level <= 8; ++level) {
      if (levels[level - 1].size() > best) {
        best = levels[level - 1].size();
        c = level;
      }
    }
    EXPECT_EQ(idx.c_value(v), c) << "v=" << v;
  }
}

TEST(NlrnlIndexTest, ForwardAndReverseLevelCounts) {
  Rng rng(75);
  const Graph g = BarabasiAlbert(150, 3, rng);
  const NlrnlIndex idx(g);
  BoundedBfs bfs(g);
  for (VertexId v = 0; v < g.num_vertices(); v += 11) {
    const uint32_t ecc = bfs.Eccentricity(v);
    const uint32_t c = idx.c_value(v);
    EXPECT_EQ(idx.num_forward_levels(v), std::min(ecc, c - 1));
    EXPECT_EQ(idx.num_reverse_levels(v), ecc > c ? ecc - c : 0u);
  }
}

TEST(NlrnlIndexTest, PathGraphSemantics) {
  // On a path the distances are |i - j|; exercise all three answer paths
  // (forward hit, reverse hit, "absence == exactly c").
  NlrnlIndex idx(PathGraph(24));
  for (VertexId i = 0; i < 24; i += 3) {
    for (VertexId j = 0; j < 24; ++j) {
      if (i == j) continue;
      const HopDistance d =
          static_cast<HopDistance>(i > j ? i - j : j - i);
      for (const HopDistance k : {1, 2, 3, 5, 8, 12}) {
        EXPECT_EQ(idx.IsFartherThan(i, j, k), d > k)
            << "i=" << i << " j=" << j << " k=" << k;
      }
    }
  }
}

TEST(NlrnlIndexTest, CrossComponentIsFarther) {
  GraphBuilder b(6);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(3, 4);
  NlrnlIndex idx(b.Build());
  EXPECT_TRUE(idx.IsFartherThan(0, 3, 100));
  EXPECT_TRUE(idx.IsFartherThan(2, 5, 100));
  EXPECT_FALSE(idx.IsFartherThan(0, 2, 2));
}

TEST(NlrnlIndexTest, SelfAndKZero) {
  NlrnlIndex idx(CycleGraph(8));
  EXPECT_FALSE(idx.IsFartherThan(3, 3, 0));
  EXPECT_TRUE(idx.IsFartherThan(3, 4, 0));
}

TEST(NlrnlIndexTest, SymmetricAnswers) {
  Rng rng(77);
  const Graph g = ErdosRenyi(80, 0.05, rng);
  NlrnlIndex idx(g);
  for (int trial = 0; trial < 500; ++trial) {
    const auto u = static_cast<VertexId>(rng.Below(80));
    const auto v = static_cast<VertexId>(rng.Below(80));
    const auto k = static_cast<HopDistance>(1 + rng.Below(5));
    EXPECT_EQ(idx.IsFartherThan(u, v, k), idx.IsFartherThan(v, u, k));
  }
}

TEST(NlrnlIndexTest, SmallerThanNlOnSmallWorld) {
  // The headline of Figure 9(a): NLRNL skips each vertex's biggest level
  // and stores each pair once, so it is smaller than NL once NL has had to
  // expand (here: compare construction-time footprints, where halving alone
  // should already win on a graph whose argmax level is large).
  Rng rng(79);
  const Graph g = BarabasiAlbert(400, 4, rng);
  const NlIndex nl(g);
  const NlrnlIndex nlrnl(g);
  EXPECT_LT(nlrnl.MemoryBytes(), nl.MemoryBytes());
}

TEST(NlrnlIndexTest, IsolatedVertexEntry) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  NlrnlIndex idx(b.Build());
  EXPECT_EQ(idx.num_forward_levels(2), 0u);
  EXPECT_EQ(idx.num_reverse_levels(2), 0u);
  EXPECT_TRUE(idx.IsFartherThan(2, 0, 5));
}

}  // namespace
}  // namespace ktg
