// Copyright (c) 2026 The ktg Authors.
// Certification of the anytime/portfolio layer (src/heur/): on small
// instances with a known exact optimum the portfolio must find it, every
// reported optimality gap must be sound (upper_bound >= true optimum, so
// gap 0 proves optimality), truncated anytime runs must stay sound and
// improve monotonically with budget, and racing must not change the best
// coverage found. tools/quality_eval + ci/check_quality.py enforce the
// same properties in CI on checked-in seeds.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/brute_force.h"
#include "core/candidates.h"
#include "core/conflict_graph_engine.h"
#include "core/ktg_engine.h"
#include "datagen/generators.h"
#include "datagen/keyword_assigner.h"
#include "datagen/query_gen.h"
#include "heur/heuristics.h"
#include "heur/portfolio.h"
#include "index/bfs_checker.h"
#include "keywords/inverted_index.h"
#include "obs/metrics.h"

namespace ktg {
namespace {

struct Instance {
  AttributedGraph graph;
  std::vector<KtgQuery> queries;
};

// The same small randomized families the engine-equivalence suite certifies
// against brute force; small enough that BruteForceKtg is the ground truth.
Instance MakeInstance(int round) {
  Rng rng(0x4E0B0 + round * 1327);
  Graph topo;
  switch (round % 4) {
    case 0:
      topo = ErdosRenyi(32, 0.09, rng);
      break;
    case 1:
      topo = BarabasiAlbert(34, 2, rng);
      break;
    case 2:
      topo = WattsStrogatz(30, 2, 0.2, rng);
      break;
    default:
      topo = ChungLuPowerLaw(36, 5.0, 2.5, rng);
      break;
  }
  KeywordModel model;
  model.vocabulary_size = 12;
  model.min_per_vertex = 1;
  model.max_per_vertex = 3;
  model.empty_fraction = 0.1;
  Instance inst{AssignKeywords(std::move(topo), model, rng), {}};

  WorkloadOptions wopts;
  wopts.num_queries = 3;
  wopts.keyword_count = 4 + round % 3;
  wopts.group_size = 2 + round % 3;
  wopts.tenuity = static_cast<HopDistance>(1 + round % 2);
  wopts.top_n = 1 + round % 3;
  inst.queries = GenerateWorkload(inst.graph, wopts, rng);
  return inst;
}

int BestCovered(const KtgResult& r) {
  return r.groups.empty() ? 0 : r.groups.front().covered();
}

std::vector<int> CoverageCounts(const std::vector<Group>& groups) {
  std::vector<int> out;
  out.reserve(groups.size());
  for (const auto& g : groups) out.push_back(g.covered());
  return out;
}

// ---------------------------------------------------------------------------
// Portfolio certification: optimum reached, gap sound, groups feasible.

class PortfolioCertificationTest : public ::testing::TestWithParam<int> {};

TEST_P(PortfolioCertificationTest, FindsExactOptimumWithSoundGap) {
  const Instance inst = MakeInstance(GetParam());
  const InvertedIndex idx(inst.graph);
  for (const KtgQuery& q : inst.queries) {
    BfsChecker ref_checker(inst.graph.graph());
    const auto truth = BruteForceKtg(inst.graph, idx, ref_checker, q);
    ASSERT_TRUE(truth.ok());
    const int optimum = BestCovered(*truth);

    BfsChecker checker(inst.graph.graph());
    heur::PortfolioOptions popts;
    popts.seed = 17;
    const auto got =
        heur::RunKtgPortfolio(inst.graph, idx, checker, q, popts);
    ASSERT_TRUE(got.ok());

    // Soundness first: the reported bound must dominate the true optimum,
    // independent of whether the search found it.
    EXPECT_GE(got->stats.upper_bound, optimum);
    EXPECT_EQ(got->stats.gap,
              got->stats.upper_bound - BestCovered(*got));

    // Certification: on these small instances the portfolio reaches the
    // exact branch-and-bound optimum.
    EXPECT_EQ(BestCovered(*got), optimum)
        << "round=" << GetParam() << " p=" << q.group_size
        << " k=" << static_cast<int>(q.tenuity);

    // Every returned group satisfies the full KTG feasibility contract.
    for (const Group& grp : got->groups) {
      EXPECT_EQ(grp.members.size(), q.group_size);
      EXPECT_TRUE(IsKDistanceGroup(grp.members, q.tenuity, ref_checker));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, PortfolioCertificationTest,
                         ::testing::Range(0, 8));

// Racing changes thread interleaving but never the best coverage found:
// strategies only write to the incumbent, and the sole shared read is the
// result-neutral "threshold == upper bound" early stop.
TEST(PortfolioTest, BestCoverageIsThreadCountInvariant) {
  for (int round = 0; round < 4; ++round) {
    const Instance inst = MakeInstance(round);
    const InvertedIndex idx(inst.graph);
    for (const KtgQuery& q : inst.queries) {
      int serial_best = -1;
      for (const uint32_t threads : {1u, 2u, 4u}) {
        BfsChecker checker(inst.graph.graph());
        heur::PortfolioOptions popts;
        popts.seed = 5;
        popts.num_threads = threads;
        const auto got =
            heur::RunKtgPortfolio(inst.graph, idx, checker, q, popts);
        ASSERT_TRUE(got.ok());
        if (serial_best < 0) {
          serial_best = BestCovered(*got);
        } else {
          EXPECT_EQ(BestCovered(*got), serial_best) << "threads=" << threads;
        }
      }
    }
  }
}

TEST(PortfolioTest, EmitsPerStrategyAndAnytimeMetrics) {
  const Instance inst = MakeInstance(1);
  const InvertedIndex idx(inst.graph);
  BfsChecker checker(inst.graph.graph());
  obs::MetricsRegistry registry;
  heur::PortfolioOptions popts;
  popts.metrics = &registry;
  ASSERT_TRUE(heur::RunKtgPortfolio(inst.graph, idx, checker,
                                    inst.queries.at(0), popts)
                  .ok());
  EXPECT_GE(registry.CounterValue("heur.greedy.iterations"), 1u);
  EXPECT_GE(registry.CounterValue("heur.grasp.iterations"), 1u);
  EXPECT_GE(registry.CounterValue("heur.swap.iterations"), 1u);
  EXPECT_GE(registry.CounterValue("search.anytime.runs"), 1u);
}

TEST(PortfolioTest, RejectsMalformedQueriesAndOversizedCandidateSets) {
  const Instance inst = MakeInstance(0);
  const InvertedIndex idx(inst.graph);
  BfsChecker checker(inst.graph.graph());

  KtgQuery bad = inst.queries.at(0);
  bad.group_size = 0;
  EXPECT_FALSE(heur::RunKtgPortfolio(inst.graph, idx, checker, bad).ok());

  heur::PortfolioOptions tiny;
  tiny.max_candidates = 1;
  const auto st = heur::RunKtgPortfolio(inst.graph, idx, checker,
                                        inst.queries.at(0), tiny);
  EXPECT_FALSE(st.ok());
}

// RunKtgWithMode is the CLI/server dispatch: exact and anytime go through
// the branch-and-bound engine, portfolio through the race.
TEST(PortfolioTest, ModeDispatchRoutesAllThreeModes) {
  const Instance inst = MakeInstance(2);
  const InvertedIndex idx(inst.graph);
  const KtgQuery& q = inst.queries.at(0);

  BfsChecker c1(inst.graph.graph());
  EngineOptions exact;
  const auto exact_r = heur::RunKtgWithMode(inst.graph, idx, c1, q, exact);
  ASSERT_TRUE(exact_r.ok());
  EXPECT_EQ(exact_r->stats.gap, 0);

  BfsChecker c2(inst.graph.graph());
  EngineOptions anytime;
  anytime.mode = EngineMode::kAnytime;
  const auto any_r = heur::RunKtgWithMode(inst.graph, idx, c2, q, anytime);
  ASSERT_TRUE(any_r.ok());
  // No budget: the anytime run completes and keeps the exact profile.
  EXPECT_EQ(CoverageCounts(any_r->groups), CoverageCounts(exact_r->groups));
  EXPECT_EQ(any_r->stats.gap, 0);

  BfsChecker c3(inst.graph.graph());
  EngineOptions portfolio;
  portfolio.mode = EngineMode::kPortfolio;
  const auto port_r =
      heur::RunKtgWithMode(inst.graph, idx, c3, q, portfolio);
  ASSERT_TRUE(port_r.ok());
  EXPECT_GE(port_r->stats.upper_bound, BestCovered(*port_r));
}

// ---------------------------------------------------------------------------
// Anytime truncation: soundness under any budget, monotone improvement.

class AnytimeSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(AnytimeSoundnessTest, TruncatedRunsReportSoundGaps) {
  const Instance inst = MakeInstance(GetParam());
  const InvertedIndex idx(inst.graph);
  for (const KtgQuery& q : inst.queries) {
    BfsChecker ref_checker(inst.graph.graph());
    const auto truth = BruteForceKtg(inst.graph, idx, ref_checker, q);
    ASSERT_TRUE(truth.ok());
    const int optimum = BestCovered(*truth);

    for (const uint64_t max_nodes : {1ull, 4ull, 64ull}) {
      BfsChecker checker(inst.graph.graph());
      EngineOptions opts;
      opts.mode = EngineMode::kAnytime;
      opts.max_nodes = max_nodes;
      const auto got = RunKtg(inst.graph, idx, checker, q, opts);
      ASSERT_TRUE(got.ok());
      // Sound under any truncation: best found plus the reported gap is a
      // valid upper bound on the true optimum.
      EXPECT_GE(got->stats.upper_bound, optimum) << "max_nodes=" << max_nodes;
      EXPECT_GE(BestCovered(*got) + got->stats.gap, optimum);
      EXPECT_GE(got->stats.gap, 0);
    }

    // The conflict-graph engine honors the same contract.
    for (const uint64_t max_nodes : {1ull, 64ull}) {
      BfsChecker checker(inst.graph.graph());
      ConflictEngineOptions copts;
      copts.mode = EngineMode::kAnytime;
      copts.max_nodes = max_nodes;
      const auto got =
          RunKtgConflictGraph(inst.graph, idx, checker, q, copts);
      ASSERT_TRUE(got.ok());
      EXPECT_GE(got->stats.upper_bound, optimum) << "max_nodes=" << max_nodes;
      EXPECT_GE(BestCovered(*got) + got->stats.gap, optimum);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, AnytimeSoundnessTest, ::testing::Range(0, 4));

TEST(AnytimeTest, GapShrinksMonotonicallyWithNodeBudget) {
  const Instance inst = MakeInstance(3);
  const InvertedIndex idx(inst.graph);
  for (const KtgQuery& q : inst.queries) {
    int prev_gap = -1;
    // 0 = unlimited: the run completes and must prove gap 0.
    for (const uint64_t max_nodes : {1ull, 8ull, 64ull, 512ull, 0ull}) {
      BfsChecker checker(inst.graph.graph());
      EngineOptions opts;
      opts.mode = EngineMode::kAnytime;
      opts.max_nodes = max_nodes;
      const auto got = RunKtg(inst.graph, idx, checker, q, opts);
      ASSERT_TRUE(got.ok());
      if (prev_gap >= 0) {
        EXPECT_LE(got->stats.gap, prev_gap) << "max_nodes=" << max_nodes;
      }
      prev_gap = got->stats.gap;
    }
    EXPECT_EQ(prev_gap, 0);
  }
}

// A completed anytime run is certified exact: greedy seeds occupy collector
// slots, and the strict-improvement rule still admits every strictly better
// group the exhaustive search visits.
TEST(AnytimeTest, CompletedAnytimeRunKeepsTheExactCoverageProfile) {
  for (int round = 0; round < 4; ++round) {
    const Instance inst = MakeInstance(round);
    const InvertedIndex idx(inst.graph);
    for (const KtgQuery& q : inst.queries) {
      BfsChecker c1(inst.graph.graph());
      const auto exact_r = RunKtg(inst.graph, idx, c1, q, {});
      ASSERT_TRUE(exact_r.ok());

      BfsChecker c2(inst.graph.graph());
      EngineOptions opts;
      opts.mode = EngineMode::kAnytime;
      const auto any_r = RunKtg(inst.graph, idx, c2, q, opts);
      ASSERT_TRUE(any_r.ok());
      EXPECT_EQ(CoverageCounts(any_r->groups),
                CoverageCounts(exact_r->groups));
      EXPECT_EQ(any_r->stats.gap, 0);
      EXPECT_EQ(any_r->stats.upper_bound, BestCovered(*any_r));
    }
  }
}

// ---------------------------------------------------------------------------
// Local-search primitives.

struct PrimitiveFixture {
  Instance inst = MakeInstance(0);
  InvertedIndex idx{inst.graph};
  BfsChecker checker{inst.graph.graph()};
  std::vector<Candidate> cands;
  ConflictAdjacency cg;
  heur::HeurContext ctx;

  explicit PrimitiveFixture(const KtgQuery& q) {
    cands = ExtractCandidates(inst.graph, idx, q, checker);
    std::sort(cands.begin(), cands.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.vkc != b.vkc) return a.vkc > b.vkc;
                if (a.degree != b.degree) return a.degree < b.degree;
                return a.vertex < b.vertex;
              });
    cg = BuildConflictAdjacency(inst.graph.graph(), checker, cands, q.tenuity,
                                ConflictBuild::kBallWalk);
    ctx.cands = &cands;
    ctx.adj = &cg.adj;
    ctx.p = q.group_size;
  }

  bool ConflictFree(const heur::PosGroup& g) const {
    for (size_t i = 0; i < g.positions.size(); ++i) {
      for (size_t j = i + 1; j < g.positions.size(); ++j) {
        if (cg.adj[g.positions[i]].Test(g.positions[j])) return false;
      }
    }
    return true;
  }
};

TEST(HeuristicsTest, ConstructionsProduceConflictFreeGroups) {
  const Instance probe = MakeInstance(0);
  PrimitiveFixture fx(probe.queries.at(0));
  for (uint32_t skip = 0; skip < 4; ++skip) {
    const heur::PosGroup g = heur::GreedyConstruct(fx.ctx, skip);
    EXPECT_TRUE(fx.ConflictFree(g)) << "skip=" << skip;
    EXPECT_LE(g.positions.size(), fx.ctx.p);
  }
  heur::SplitMix64 rng(42);
  for (int i = 0; i < 8; ++i) {
    const heur::PosGroup g = heur::GraspConstruct(fx.ctx, rng, 0.7);
    EXPECT_TRUE(fx.ConflictFree(g));
  }
}

TEST(HeuristicsTest, DescentNeverDecreasesCoverageAndStaysFeasible) {
  const Instance probe = MakeInstance(0);
  PrimitiveFixture fx(probe.queries.at(0));
  heur::SplitMix64 rng(7);
  for (int i = 0; i < 8; ++i) {
    heur::PosGroup g = heur::GraspConstruct(fx.ctx, rng, 1.0);
    const int before = g.covered();
    heur::ShiftSwapDescent(fx.ctx, &g);
    EXPECT_GE(g.covered(), before);
    EXPECT_TRUE(fx.ConflictFree(g));
  }
}

TEST(HeuristicsTest, TabuStepsStayFeasibleAndRespectAspiration) {
  const Instance probe = MakeInstance(0);
  PrimitiveFixture fx(probe.queries.at(0));
  heur::PosGroup g = heur::GreedyConstruct(fx.ctx, 0);
  heur::ShiftSwapDescent(fx.ctx, &g);
  if (!g.complete(fx.ctx)) GTEST_SKIP() << "instance has no feasible group";
  std::vector<uint64_t> tabu(fx.cands.size(), 0);
  int best = g.covered();
  for (uint64_t step = 1; step <= 16; ++step) {
    if (!heur::TabuStep(fx.ctx, &g, &tabu, step, 4, best)) break;
    EXPECT_TRUE(fx.ConflictFree(g));
    EXPECT_TRUE(g.complete(fx.ctx));
    best = std::max(best, g.covered());
  }
}

}  // namespace
}  // namespace ktg
