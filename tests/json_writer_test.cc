// Copyright (c) 2026 The ktg Authors.
// JSON writer tests: structure, escaping, numeric formatting and the
// percentile utilities that share the reporting path.

#include <gtest/gtest.h>

#include "util/json_writer.h"
#include "util/percentiles.h"

namespace ktg {
namespace {

TEST(JsonWriterTest, FlatObject) {
  JsonWriter w;
  w.BeginObject()
      .KV("name", "ktg")
      .KV("vertices", 42)
      .KV("ratio", 0.5)
      .KV("ok", true)
      .Key("missing")
      .Null()
      .EndObject();
  EXPECT_EQ(w.str(),
            R"({"name":"ktg","vertices":42,"ratio":0.5,"ok":true,"missing":null})");
}

TEST(JsonWriterTest, NestedArrays) {
  JsonWriter w;
  w.BeginObject().Key("groups").BeginArray();
  w.BeginArray().Value(1).Value(2).EndArray();
  w.BeginArray().Value(3).EndArray();
  w.EndArray().EndObject();
  EXPECT_EQ(w.str(), R"({"groups":[[1,2],[3]]})");
}

TEST(JsonWriterTest, EscapesSpecials) {
  EXPECT_EQ(JsonWriter::Escape("a\"b"), R"("a\"b")");
  EXPECT_EQ(JsonWriter::Escape("back\\slash"), R"("back\\slash")");
  EXPECT_EQ(JsonWriter::Escape("line\nbreak\ttab"), R"("line\nbreak\ttab")");
  EXPECT_EQ(JsonWriter::Escape(std::string_view("\x01", 1)), "\"\\u0001\"");
}

TEST(JsonWriterTest, TopLevelArray) {
  JsonWriter w;
  w.BeginArray().Value("x").Value(int64_t{-7}).EndArray();
  EXPECT_EQ(w.str(), R"(["x",-7])");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray()
      .Value(std::numeric_limits<double>::infinity())
      .Value(std::nan(""))
      .EndArray();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonWriterDeathTest, MisuseIsFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        JsonWriter w;
        w.BeginObject().Value(1);  // value without a key
      },
      "Key");
  EXPECT_DEATH(
      {
        JsonWriter w;
        w.BeginArray().EndObject();  // mismatched scope
      },
      "EndObject");
}

TEST(PercentilesTest, ExactOrderStatistics) {
  const std::vector<double> v = {4, 1, 3, 2, 5};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.25), 2.0);
  // Interpolated.
  EXPECT_DOUBLE_EQ(Percentile(v, 0.125), 1.5);
}

TEST(PercentilesTest, SingleSample) {
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 0.99), 7.0);
}

TEST(PercentilesTest, SummaryFromSamples) {
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) samples.push_back(i);
  const auto s = LatencySummary::FromSamples(samples);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.p90, 90.1, 1e-9);
  EXPECT_NEAR(s.p99, 99.01, 1e-9);
}

TEST(PercentilesTest, EmptySummaryIsZero) {
  const auto s = LatencySummary::FromSamples({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

}  // namespace
}  // namespace ktg
