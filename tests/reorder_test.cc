// Copyright (c) 2026 The ktg Authors.
// Permutation-metamorphic certification of the reorder boundary
// (graph/reorder.h + core/reorder_boundary.h): relabeling the vertices of a
// dataset — under any of the computed locality orders or an arbitrary
// random bijection — must be invisible at the API surface. Both engines
// must return the baseline's top-N coverage profile with every group
// structurally valid *on the original graph* after mapping back (coverage
// profiles, not raw members: under full-coverage ties the representative
// group legitimately depends on internal id order). The same must hold
// through the result cache (cold and warm runs) and through the
// epoch-snapshot layer under interleaved mutation batches mapped across
// the boundary. This binary carries the tsan label via snapshot coverage.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "cache/ktg_cache.h"
#include "core/brute_force.h"
#include "core/conflict_graph_engine.h"
#include "core/ktg_engine.h"
#include "core/reorder_boundary.h"
#include "core/snapshot.h"
#include "datagen/generators.h"
#include "datagen/keyword_assigner.h"
#include "datagen/mutation_gen.h"
#include "datagen/query_gen.h"
#include "graph/reorder.h"
#include "index/bfs_checker.h"
#include "index/checker_factory.h"
#include "keywords/inverted_index.h"
#include "util/macros.h"
#include "util/rng.h"

namespace ktg {
namespace {

std::vector<int> CoverageCounts(const std::vector<Group>& groups) {
  std::vector<int> out;
  out.reserve(groups.size());
  for (const auto& g : groups) out.push_back(g.covered());
  return out;
}

/// The same four topology families the engine-equivalence suite sweeps.
AttributedGraph MakeInstance(int round, Rng& rng) {
  Graph topo;
  switch (round % 4) {
    case 0:
      topo = ErdosRenyi(34, 0.08, rng);
      break;
    case 1:
      topo = BarabasiAlbert(36, 2, rng);
      break;
    case 2:
      topo = WattsStrogatz(32, 2, 0.2, rng);
      break;
    default:
      topo = ChungLuPowerLaw(38, 5.0, 2.5, rng);
      break;
  }
  KeywordModel model;
  model.vocabulary_size = 12;
  model.min_per_vertex = 1;
  model.max_per_vertex = 3;
  model.empty_fraction = 0.1;
  return AssignKeywords(std::move(topo), model, rng);
}

VertexRemap RandomRemap(uint32_t n, Rng& rng) {
  std::vector<VertexId> to_new(n);
  std::iota(to_new.begin(), to_new.end(), VertexId{0});
  std::shuffle(to_new.begin(), to_new.end(), rng);
  auto remap = VertexRemap::FromPermutation(std::move(to_new));
  KTG_CHECK_MSG(remap.ok(), "random permutation");
  return *std::move(remap);
}

/// One relabeled copy of the instance plus the plan that produced it.
struct Relabeling {
  std::string name;
  AttributedGraph graph;
  ReorderPlan plan;
};

/// Every computed order plus two arbitrary random bijections — the
/// metamorphic transform set each instance is run under.
std::vector<Relabeling> MakeRelabelings(const AttributedGraph& original,
                                        Rng& rng) {
  std::vector<Relabeling> out;
  for (const ReorderMode mode :
       {ReorderMode::kDegree, ReorderMode::kBfs, ReorderMode::kDegeneracy}) {
    Relabeling r;
    r.name = ReorderModeName(mode);
    r.graph = original;
    r.plan = ReorderDataset(&r.graph, mode);
    out.push_back(std::move(r));
  }
  for (int p = 0; p < 2; ++p) {
    Relabeling r;
    r.name = "perm" + std::to_string(p);
    r.graph = original;
    r.plan = ReorderDatasetWithRemap(
        &r.graph, RandomRemap(original.num_vertices(), rng));
    out.push_back(std::move(r));
  }
  return out;
}

/// Structural validity of mapped-back groups, judged ONLY against the
/// original graph: ascending original-id members of the right count,
/// pairwise within k hops, and a coverage mask that is both honest (every
/// member contributes) and equal to what the engine reported.
void ExpectValidOnOriginal(const AttributedGraph& original,
                           const KtgQuery& query,
                           const std::vector<Group>& groups,
                           const std::string& label) {
  BfsChecker validator(original.graph());
  for (const auto& grp : groups) {
    EXPECT_EQ(grp.members.size(), query.group_size) << label;
    EXPECT_TRUE(std::is_sorted(grp.members.begin(), grp.members.end()))
        << label;
    for (const VertexId m : grp.members) {
      EXPECT_LT(m, original.num_vertices()) << label;
    }
    EXPECT_TRUE(IsKDistanceGroup(grp.members, query.tenuity, validator))
        << label;
    CoverMask mask = 0;
    for (const VertexId m : grp.members) {
      const CoverMask vm = CoverMaskOf(original, m, query.keywords);
      EXPECT_GT(PopCount(vm), 0) << label;
      mask |= vm;
    }
    EXPECT_EQ(mask, grp.mask) << label;
  }
}

// ---------------------------------------------------------------------------
// The remap itself: bijectivity, determinism, isomorphism.

TEST(VertexRemapTest, FromPermutationRoundTripsAndRejectsNonBijections) {
  Rng rng(0x9E37);
  const uint32_t n = 97;
  const VertexRemap remap = RandomRemap(n, rng);
  ASSERT_EQ(remap.num_vertices(), n);
  for (VertexId v = 0; v < n; ++v) {
    EXPECT_EQ(remap.ToOld(remap.ToNew(v)), v);
    EXPECT_EQ(remap.ToNew(remap.ToOld(v)), v);
  }
  std::vector<VertexId> ids = {5, 3, 96, 0, 3};
  const std::vector<VertexId> before = ids;
  remap.MapToNew(&ids);
  remap.MapToOld(&ids);
  EXPECT_EQ(ids, before);

  EXPECT_FALSE(VertexRemap::FromPermutation({0, 0, 2}).ok());   // duplicate
  EXPECT_FALSE(VertexRemap::FromPermutation({0, 1, 3}).ok());   // out of range
  EXPECT_FALSE(VertexRemap::FromOrder({2, 2, 0}).ok());
  EXPECT_TRUE(VertexRemap::Identity(4).IsIdentity());
  EXPECT_FALSE(RandomRemap(64, rng).IsIdentity());  // astronomically unlikely
}

TEST(ComputeReorderTest, DeterministicAndBijectivePerMode) {
  Rng rng(0xD0D0);
  const AttributedGraph g = MakeInstance(3, rng);
  for (const ReorderMode mode :
       {ReorderMode::kNone, ReorderMode::kDegree, ReorderMode::kBfs,
        ReorderMode::kDegeneracy}) {
    const VertexRemap a = ComputeReorder(g.graph(), mode);
    const VertexRemap b = ComputeReorder(g.graph(), mode);
    EXPECT_EQ(a.to_new(), b.to_new()) << ReorderModeName(mode);
    EXPECT_EQ(a.num_vertices(), g.num_vertices()) << ReorderModeName(mode);
    if (mode == ReorderMode::kNone) {
      EXPECT_TRUE(a.IsIdentity());
    }
    // Bijectivity: to_old really inverts to_new.
    for (VertexId v = 0; v < a.num_vertices(); ++v) {
      EXPECT_EQ(a.ToOld(a.ToNew(v)), v);
    }
  }
}

TEST(ApplyRemapTest, RelabeledGraphIsIsomorphic) {
  Rng rng(0xA110);
  const AttributedGraph g = MakeInstance(0, rng);
  const VertexRemap remap = RandomRemap(g.num_vertices(), rng);
  const Graph relabeled = ApplyRemap(g.graph(), remap);
  ASSERT_EQ(relabeled.num_vertices(), g.graph().num_vertices());
  ASSERT_EQ(relabeled.num_edges(), g.graph().num_edges());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    EXPECT_EQ(relabeled.Degree(remap.ToNew(u)), g.graph().Degree(u));
    for (const VertexId v : g.graph().Neighbors(u)) {
      EXPECT_TRUE(relabeled.HasEdge(remap.ToNew(u), remap.ToNew(v)));
    }
  }
  // Locality stats see the same edge multiset under both labelings.
  EXPECT_EQ(ComputeLocality(relabeled).edges,
            ComputeLocality(g.graph()).edges);
}

TEST(ReorderDatasetTest, KeywordsFollowTheirVerticesAndVocabularyIsShared) {
  Rng rng(0xF00D);
  const AttributedGraph original = MakeInstance(2, rng);
  AttributedGraph reordered = original;
  const ReorderPlan plan = ReorderDataset(&reordered, ReorderMode::kDegree);
  ASSERT_TRUE(plan.active());
  ASSERT_EQ(plan.remap.num_vertices(), original.num_vertices());
  EXPECT_EQ(reordered.vocabulary().size(), original.vocabulary().size());
  for (VertexId v = 0; v < original.num_vertices(); ++v) {
    auto a = original.Keywords(v);
    auto b = reordered.Keywords(plan.remap.ToNew(v));
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
        << "vertex " << v;
  }
  // The plan measured both labelings over the same edges.
  EXPECT_EQ(plan.before.edges, plan.after.edges);
}

// ---------------------------------------------------------------------------
// The metamorphic core: both engines, every relabeling, mapped-back results.

class ReorderMetamorphicTest : public ::testing::TestWithParam<int> {};

TEST_P(ReorderMetamorphicTest, EnginesMatchBaselineUnderEveryRelabeling) {
  const int round = GetParam();
  Rng rng(0x4E0000 + round * 1201);
  const AttributedGraph g = MakeInstance(round, rng);
  const InvertedIndex idx(g);

  WorkloadOptions wopts;
  wopts.num_queries = 2;
  wopts.keyword_count = 4 + round % 3;
  wopts.group_size = 2 + round % 3;
  wopts.tenuity = static_cast<HopDistance>(1 + round % 3);
  wopts.top_n = 1 + round % 4;
  const auto queries = GenerateWorkload(g, wopts, rng);

  const auto relabelings = MakeRelabelings(g, rng);

  for (const auto& query : queries) {
    BfsChecker base_checker(g.graph());
    const auto base = RunKtg(g, idx, base_checker, query, {});
    ASSERT_TRUE(base.ok());
    const auto expected = CoverageCounts(base->groups);
    ExpectValidOnOriginal(g, query, base->groups, "baseline");

    for (const auto& r : relabelings) {
      ASSERT_TRUE(r.plan.active()) << r.name;
      const InvertedIndex ridx(r.graph);
      const KtgQuery iq = MapQueryToInternal(query, r.plan.remap);
      EXPECT_EQ(iq.keywords, query.keywords);  // keyword ids never move

      const std::string label =
          r.name + " round=" + std::to_string(round) +
          " p=" + std::to_string(query.group_size) +
          " k=" + std::to_string(query.tenuity) +
          " N=" + std::to_string(query.top_n);

      // Branch-and-bound engine on the relabeled instance.
      {
        auto checker =
            MakeChecker(CheckerKind::kNlrnl, r.graph.graph(), query.tenuity);
        auto got = RunKtg(r.graph, ridx, *checker, iq, {});
        ASSERT_TRUE(got.ok()) << label;
        MapGroupsToOriginal(r.plan.remap, &got->groups);
        EXPECT_EQ(CoverageCounts(got->groups), expected) << "bb " << label;
        ExpectValidOnOriginal(g, query, got->groups, "bb " + label);
      }

      // Conflict-graph engine on the relabeled instance.
      {
        auto checker = MakeChecker(CheckerKind::kKHopBitmap, r.graph.graph(),
                                   query.tenuity);
        auto got = RunKtgConflictGraph(r.graph, ridx, *checker, iq, {});
        ASSERT_TRUE(got.ok()) << label;
        MapGroupsToOriginal(r.plan.remap, &got->groups);
        EXPECT_EQ(CoverageCounts(got->groups), expected) << "cg " << label;
        ExpectValidOnOriginal(g, query, got->groups, "cg " + label);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, ReorderMetamorphicTest,
                         ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Through the result cache: the canonical QueryKey is built from the mapped
// query, so a cold fill and a warm hit must return identical groups — and
// both must carry the baseline coverage profile after mapping back.

TEST(ReorderCacheTest, ColdAndWarmCachedRunsAgreeAndMatchBaseline) {
  Rng rng(0xCAC4E);
  const AttributedGraph g = MakeInstance(1, rng);
  const InvertedIndex idx(g);

  WorkloadOptions wopts;
  wopts.num_queries = 4;
  wopts.keyword_count = 5;
  wopts.group_size = 3;
  wopts.tenuity = 2;
  wopts.top_n = 3;
  const auto queries = GenerateWorkload(g, wopts, rng);

  AttributedGraph reordered = g;
  const ReorderPlan plan = ReorderDataset(&reordered, ReorderMode::kBfs);
  const InvertedIndex ridx(reordered);
  auto checker = MakeChecker(CheckerKind::kNlrnl, reordered.graph(),
                             wopts.tenuity);

  KtgCache cache;
  EngineOptions opts;
  opts.cache = &cache;

  for (const auto& query : queries) {
    BfsChecker base_checker(g.graph());
    const auto base = RunKtg(g, idx, base_checker, query, {});
    ASSERT_TRUE(base.ok());

    const KtgQuery iq = MapQueryToInternal(query, plan.remap);
    auto cold = RunKtg(reordered, ridx, *checker, iq, opts);
    ASSERT_TRUE(cold.ok());
    auto warm = RunKtg(reordered, ridx, *checker, iq, opts);
    ASSERT_TRUE(warm.ok());

    MapGroupsToOriginal(plan.remap, &cold->groups);
    MapGroupsToOriginal(plan.remap, &warm->groups);
    // Same engine, same internal labeling: a cache hit must replay the
    // exact groups, not merely the profile.
    EXPECT_EQ(cold->groups, warm->groups);
    EXPECT_EQ(CoverageCounts(cold->groups), CoverageCounts(base->groups));
    ExpectValidOnOriginal(g, query, warm->groups, "warm");
  }
  EXPECT_GT(cache.QueryStats().hits, 0u);
}

// ---------------------------------------------------------------------------
// Through the snapshot layer: the same mutation stream, mapped across the
// boundary batch by batch, must keep a reordered store and an unreordered
// store observationally equal at every epoch — including a retained pin of
// the previous epoch (the interleaving a live server actually exhibits).

TEST(ReorderSnapshotTest, MappedMutationStreamKeepsStoresEquivalent) {
  Rng rng(0x5EED9);
  const AttributedGraph g = MakeInstance(3, rng);

  WorkloadOptions wopts;
  wopts.num_queries = 3;
  wopts.keyword_count = 4;
  wopts.group_size = 3;
  wopts.tenuity = 2;
  wopts.top_n = 3;
  const auto queries = GenerateWorkload(g, wopts, rng);

  AttributedGraph reordered = g;
  const ReorderPlan plan = ReorderDataset(&reordered, ReorderMode::kDegeneracy);
  ASSERT_TRUE(plan.active());

  SnapshotStore::Options sopts;
  sopts.checker = CheckerKind::kNlrnl;
  sopts.build_threads = 1;
  SnapshotStore base_store(AttributedGraph(g), sopts);
  SnapshotStore reord_store(std::move(reordered), sopts);

  MutationWorkloadOptions mopts;
  mopts.num_batches = 5;
  mopts.edges_per_batch = 3;
  mopts.keywords_per_batch = 1;
  Rng mrng(0x77AA);
  const auto batches = GenerateMutationWorkload(g, mopts, mrng);

  const auto run_all = [&](const EngineSnapshot& snap, bool mapped) {
    std::vector<std::vector<int>> profiles;
    for (const auto& query : queries) {
      const KtgQuery iq =
          mapped ? MapQueryToInternal(query, plan.remap) : query;
      std::unique_ptr<DistanceChecker> bfs;
      DistanceChecker* checker = snap.checker();
      if (checker == nullptr) {
        bfs = std::make_unique<BfsChecker>(snap.graph().graph());
        checker = bfs.get();
      }
      auto got = RunKtg(snap.graph(), snap.index(), *checker, iq, {});
      KTG_CHECK_MSG(got.ok(), "snapshot run");
      if (mapped) MapGroupsToOriginal(plan.remap, &got->groups);
      profiles.push_back(CoverageCounts(got->groups));
    }
    return profiles;
  };

  const auto compare_epochs = [&]() {
    const SnapshotPin bp = base_store.Pin();
    const SnapshotPin rp = reord_store.Pin();
    ASSERT_EQ(bp->epoch(), rp->epoch());
    EXPECT_EQ(run_all(*bp, /*mapped=*/false), run_all(*rp, /*mapped=*/true))
        << "epoch " << bp->epoch();
  };

  compare_epochs();  // boot epoch

  SnapshotPin prev_base = base_store.Pin();
  SnapshotPin prev_reord = reord_store.Pin();
  for (const MutationBatch& batch : batches) {
    const auto base_info = base_store.Apply(batch);
    ASSERT_TRUE(base_info.ok()) << base_info.status().ToString();
    const auto reord_info =
        reord_store.Apply(MapBatchToInternal(batch, plan.remap));
    ASSERT_TRUE(reord_info.ok()) << reord_info.status().ToString();
    ASSERT_EQ(base_info->epoch, reord_info->epoch);

    // The retired pins (previous epoch) must still agree with each other…
    EXPECT_EQ(run_all(*prev_base, /*mapped=*/false),
              run_all(*prev_reord, /*mapped=*/true));
    // …and so must the freshly published epoch.
    compare_epochs();
    prev_base = base_store.Pin();
    prev_reord = reord_store.Pin();
  }
}

}  // namespace
}  // namespace ktg
