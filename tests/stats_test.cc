// Copyright (c) 2026 The ktg Authors.
// Graph statistics tests.

#include <gtest/gtest.h>

#include "datagen/generators.h"
#include "graph/stats.h"

namespace ktg {
namespace {

TEST(ComponentsTest, SingleComponent) {
  const auto [labels, count] = ConnectedComponents(CycleGraph(6));
  EXPECT_EQ(count, 1u);
  for (const uint32_t l : labels) EXPECT_EQ(l, 0u);
}

TEST(ComponentsTest, MultipleComponents) {
  GraphBuilder b(7);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(3, 4);
  // 5 and 6 isolated.
  const auto [labels, count] = ConnectedComponents(b.Build());
  EXPECT_EQ(count, 4u);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_NE(labels[5], labels[6]);
}

TEST(DegreeHistogramTest, Path) {
  const auto hist = DegreeHistogram(PathGraph(5));
  // Two endpoints of degree 1, three inner vertices of degree 2.
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0], 0u);
  EXPECT_EQ(hist[1], 2u);
  EXPECT_EQ(hist[2], 3u);
}

TEST(GraphStatsTest, KnownGrid) {
  Rng rng(41);
  const auto s = ComputeGraphStats(GridGraph(4, 4), rng, 16);
  EXPECT_EQ(s.num_vertices, 16u);
  EXPECT_EQ(s.num_edges, 24u);
  EXPECT_EQ(s.num_components, 1u);
  EXPECT_EQ(s.largest_component, 16u);
  EXPECT_EQ(s.max_degree, 4u);
  EXPECT_GE(s.approx_diameter, 4u);  // corner eccentricity is 6
  EXPECT_LE(s.approx_diameter, 6u);
  EXPECT_FALSE(s.ToString().empty());
}

TEST(GraphStatsTest, DistanceHistogramCountsPairs) {
  Rng rng(43);
  const auto s = ComputeGraphStats(PathGraph(4), rng, 4);
  // Each histogram bucket d >= 1 counts sampled (source, target) pairs.
  uint64_t total = 0;
  for (const auto c : s.distance_histogram) total += c;
  EXPECT_GT(total, 0u);
}

TEST(GraphStatsTest, SamplingDisabled) {
  Rng rng(45);
  const auto s = ComputeGraphStats(CycleGraph(10), rng, 0);
  EXPECT_TRUE(s.distance_histogram.empty());
  EXPECT_EQ(s.approx_diameter, 0u);
}

}  // namespace
}  // namespace ktg
