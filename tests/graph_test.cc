// Copyright (c) 2026 The ktg Authors.
// Unit tests for the CSR graph and its builder.

#include <gtest/gtest.h>

#include "datagen/generators.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace ktg {
namespace {

TEST(GraphBuilderTest, EmptyGraph) {
  GraphBuilder b;
  const Graph g = b.Build();
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.AverageDegree(), 0.0);
}

TEST(GraphBuilderTest, MinVerticesCreatesIsolated) {
  GraphBuilder b(5);
  const Graph g = b.Build();
  EXPECT_EQ(g.num_vertices(), 5u);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(g.Degree(v), 0u);
}

TEST(GraphBuilderTest, DeduplicatesAndNormalizes) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);  // reverse orientation
  b.AddEdge(0, 1);  // duplicate
  b.AddEdge(2, 2);  // self-loop dropped
  const Graph g = b.Build();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(1), 1u);
  EXPECT_EQ(g.Degree(2), 0u);
}

TEST(GraphBuilderTest, NeighborsAreSorted) {
  GraphBuilder b;
  b.AddEdge(0, 9);
  b.AddEdge(0, 3);
  b.AddEdge(0, 7);
  b.AddEdge(0, 1);
  const Graph g = b.Build();
  const auto nbrs = g.Neighbors(0);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs[0], 1u);
  EXPECT_EQ(nbrs[3], 9u);
}

TEST(GraphTest, HasEdge) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  const Graph g = b.Build();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 1));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(0, 0));
  EXPECT_FALSE(g.HasEdge(0, 99));  // out of range is just "no edge"
}

TEST(GraphTest, EdgeListRoundTrip) {
  GraphBuilder b;
  b.AddEdge(3, 1);
  b.AddEdge(0, 2);
  b.AddEdge(2, 3);
  const Graph g = b.Build();
  const auto edges = g.EdgeList();
  ASSERT_EQ(edges.size(), 3u);
  for (const auto& [u, v] : edges) EXPECT_LT(u, v);
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));

  GraphBuilder b2(g.num_vertices());
  for (const auto& [u, v] : edges) b2.AddEdge(u, v);
  const Graph g2 = b2.Build();
  EXPECT_EQ(g2.EdgeList(), edges);
}

TEST(GraphTest, AverageDegree) {
  const Graph g = CompleteGraph(5);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 4.0);
  EXPECT_EQ(g.num_edges(), 10u);
}

TEST(GraphTest, WithEdgeAdded) {
  const Graph g = PathGraph(4);
  const Graph g2 = WithEdgeAdded(g, 0, 3);
  EXPECT_EQ(g2.num_edges(), g.num_edges() + 1);
  EXPECT_TRUE(g2.HasEdge(0, 3));
  // Adding an existing edge is a no-op copy.
  const Graph g3 = WithEdgeAdded(g2, 3, 0);
  EXPECT_EQ(g3.num_edges(), g2.num_edges());
}

TEST(GraphTest, WithEdgeAddedGrowsVertexSet) {
  const Graph g = PathGraph(3);
  const Graph g2 = WithEdgeAdded(g, 2, 7);
  EXPECT_EQ(g2.num_vertices(), 8u);
  EXPECT_TRUE(g2.HasEdge(2, 7));
}

TEST(GraphTest, WithEdgeRemoved) {
  const Graph g = CycleGraph(5);
  const Graph g2 = WithEdgeRemoved(g, 4, 0);
  EXPECT_EQ(g2.num_edges(), 4u);
  EXPECT_FALSE(g2.HasEdge(0, 4));
  // Removing an absent edge is a no-op copy.
  const Graph g3 = WithEdgeRemoved(g2, 0, 4);
  EXPECT_EQ(g3.num_edges(), 4u);
}

TEST(GraphTest, MemoryBytesGrowsWithSize) {
  Rng rng(1);
  const Graph small = BarabasiAlbert(100, 3, rng);
  const Graph large = BarabasiAlbert(1000, 3, rng);
  EXPECT_GT(large.MemoryBytes(), small.MemoryBytes());
}

TEST(GraphTest, DegreeSumIsTwiceEdges) {
  Rng rng(2);
  const Graph g = ChungLuPowerLaw(500, 8.0, 2.5, rng);
  uint64_t sum = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) sum += g.Degree(v);
  EXPECT_EQ(sum, 2 * g.num_edges());
}

}  // namespace
}  // namespace ktg
