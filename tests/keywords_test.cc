// Copyright (c) 2026 The ktg Authors.
// Vocabulary and attributed-graph tests.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/paper_example.h"
#include "keywords/attributed_graph.h"
#include "keywords/inverted_index.h"
#include "keywords/vocabulary.h"

namespace ktg {
namespace {

TEST(VocabularyTest, InternIsIdempotent) {
  Vocabulary v;
  const KeywordId a = v.Intern("graph");
  const KeywordId b = v.Intern("query");
  EXPECT_NE(a, b);
  EXPECT_EQ(v.Intern("graph"), a);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.Term(a), "graph");
  EXPECT_EQ(v.Term(b), "query");
}

TEST(VocabularyTest, FindMissing) {
  Vocabulary v;
  v.Intern("x");
  EXPECT_EQ(v.Find("x"), 0u);
  EXPECT_EQ(v.Find("y"), kInvalidKeyword);
}

TEST(AttributedGraphTest, BuilderAssignsKeywords) {
  AttributedGraphBuilder b;
  b.mutable_topology().AddEdge(0, 1);
  b.AddKeywords(0, {"a", "b"});
  b.AddKeyword(1, "b");
  b.AddKeyword(1, "b");  // duplicate assignment collapses
  const AttributedGraph g = b.Build();
  EXPECT_EQ(g.num_vertices(), 2u);
  EXPECT_EQ(g.num_keywords(), 2u);
  EXPECT_EQ(g.Keywords(0).size(), 2u);
  EXPECT_EQ(g.Keywords(1).size(), 1u);
  EXPECT_TRUE(g.HasKeyword(1, g.vocabulary().Find("b")));
  EXPECT_FALSE(g.HasKeyword(1, g.vocabulary().Find("a")));
  EXPECT_EQ(g.total_keyword_assignments(), 3u);
}

TEST(AttributedGraphTest, KeywordOnUnknownVertexExtendsGraph) {
  AttributedGraphBuilder b;
  b.mutable_topology().AddEdge(0, 1);
  b.AddKeyword(5, "solo");
  const AttributedGraph g = b.Build();
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_EQ(g.graph().Degree(5), 0u);
  EXPECT_EQ(g.Keywords(5).size(), 1u);
}

TEST(AttributedGraphTest, KeywordsAreSortedPerVertex) {
  AttributedGraphBuilder b;
  b.mutable_topology().EnsureVertices(1);
  // Intern in reverse order so ids are descending relative to insertion.
  b.AddKeyword(0, "z");
  b.AddKeyword(0, "m");
  b.AddKeyword(0, "a");
  const AttributedGraph g = b.Build();
  const auto kws = g.Keywords(0);
  EXPECT_TRUE(std::is_sorted(kws.begin(), kws.end()));
}

TEST(AttributedGraphTest, SaveLoadRoundTrip) {
  const AttributedGraph g = PaperExampleGraph();
  const std::string path =
      (std::filesystem::temp_directory_path() / "ktg_attrs.txt").string();
  ASSERT_TRUE(SaveAttributes(g, path).ok());

  auto loaded = LoadAttributedGraph(g.graph(), path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_vertices(), g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto orig = g.Keywords(v);
    const auto got = loaded->Keywords(v);
    ASSERT_EQ(orig.size(), got.size()) << "vertex " << v;
    for (size_t i = 0; i < orig.size(); ++i) {
      EXPECT_EQ(g.vocabulary().Term(orig[i]),
                loaded->vocabulary().Term(got[i]));
    }
  }
  std::remove(path.c_str());
}

TEST(AttributedGraphTest, LoadMissingFileFails) {
  const auto r = LoadAttributedGraph(Graph(), "/nonexistent/attrs.txt");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(PaperExampleTest, MatchesStatedConstraints) {
  const AttributedGraph g = PaperExampleGraph();
  ASSERT_EQ(g.num_vertices(), 12u);

  // u0's 1-hop neighbors are {u1, u2, u3, u4, u9, u11}.
  const auto n0 = g.graph().Neighbors(0);
  EXPECT_EQ(std::vector<VertexId>(n0.begin(), n0.end()),
            (std::vector<VertexId>{1, 2, 3, 4, 9, 11}));

  // u3's 1-hop neighbors are {u0, u2, u4, u9}.
  const auto n3 = g.graph().Neighbors(3);
  EXPECT_EQ(std::vector<VertexId>(n3.begin(), n3.end()),
            (std::vector<VertexId>{0, 2, 4, 9}));

  // u6 and u7 are directly connected.
  EXPECT_TRUE(g.graph().HasEdge(6, 7));

  // QKC(u4) = 1/5 and QKC(u6) = 2/5 w.r.t. the example query.
  const KtgQuery q = PaperExampleQuery(g);
  EXPECT_EQ(PopCount(CoverMaskOf(g, 4, q.keywords)), 1);
  EXPECT_EQ(PopCount(CoverMaskOf(g, 6, q.keywords)), 2);

  // GQ is covered by nobody (the example's optimum is 4/5).
  const KeywordId gq = g.vocabulary().Find("GQ");
  EXPECT_EQ(gq, kInvalidKeyword);
}

}  // namespace
}  // namespace ktg
