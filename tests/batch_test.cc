// Copyright (c) 2026 The ktg Authors.
// Batch runner tests: order preservation, single- vs multi-threaded
// agreement, latency digest and error handling.

#include <gtest/gtest.h>

#include "core/batch.h"
#include "datagen/generators.h"
#include "datagen/keyword_assigner.h"
#include "datagen/query_gen.h"
#include "index/bfs_checker.h"
#include "index/nlrnl_index.h"
#include "keywords/inverted_index.h"

namespace ktg {
namespace {

class BatchTest : public ::testing::Test {
 protected:
  BatchTest() {
    Rng rng(0xBA7C);
    KeywordModel model;
    model.vocabulary_size = 30;
    graph_ = AssignKeywords(BarabasiAlbert(150, 3, rng), model, rng);
    index_ = std::make_unique<InvertedIndex>(graph_);

    WorkloadOptions wopts;
    wopts.num_queries = 12;
    wopts.group_size = 3;
    wopts.tenuity = 1;
    wopts.top_n = 2;
    queries_ = GenerateWorkload(graph_, wopts, rng);
  }

  CheckerFactory BfsFactory() const {
    return [this] { return std::make_unique<BfsChecker>(graph_.graph()); };
  }

  AttributedGraph graph_;
  std::unique_ptr<InvertedIndex> index_;
  std::vector<KtgQuery> queries_;
};

TEST_F(BatchTest, SingleThreadMatchesDirectRuns) {
  const auto batch = RunKtgBatch(graph_, *index_, BfsFactory(), queries_);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->results.size(), queries_.size());
  for (size_t i = 0; i < queries_.size(); ++i) {
    BfsChecker checker(graph_.graph());
    const auto direct = RunKtg(graph_, *index_, checker, queries_[i]);
    ASSERT_TRUE(direct.ok());
    ASSERT_EQ(batch->results[i].groups.size(), direct->groups.size());
    for (size_t g = 0; g < direct->groups.size(); ++g) {
      EXPECT_EQ(batch->results[i].groups[g].covered(),
                direct->groups[g].covered());
    }
  }
}

TEST_F(BatchTest, MultiThreadAgreesWithSingleThread) {
  BatchOptions serial;
  BatchOptions parallel;
  parallel.threads = 4;
  const auto a = RunKtgBatch(graph_, *index_, BfsFactory(), queries_, serial);
  const auto b =
      RunKtgBatch(graph_, *index_, BfsFactory(), queries_, parallel);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->results.size(), b->results.size());
  for (size_t i = 0; i < a->results.size(); ++i) {
    ASSERT_EQ(a->results[i].groups.size(), b->results[i].groups.size()) << i;
    for (size_t g = 0; g < a->results[i].groups.size(); ++g) {
      EXPECT_EQ(a->results[i].groups[g].members,
                b->results[i].groups[g].members);
    }
  }
}

TEST_F(BatchTest, LatencyDigestPopulated) {
  const auto batch = RunKtgBatch(graph_, *index_, BfsFactory(), queries_);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->latency.count, queries_.size());
  EXPECT_GE(batch->latency.max, batch->latency.p50);
  EXPECT_GE(batch->latency.p50, batch->latency.min);
  EXPECT_GE(batch->latency.p99 + 1e-12, batch->latency.p90);
  EXPECT_GT(batch->totals.nodes_expanded, 0u);
}

TEST_F(BatchTest, ValidatesUpFront) {
  auto bad = queries_;
  bad[5].group_size = 0;
  const auto batch = RunKtgBatch(graph_, *index_, BfsFactory(), bad);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(BatchTest, RejectsBadOptions) {
  EXPECT_FALSE(RunKtgBatch(graph_, *index_, nullptr, queries_).ok());
}

TEST_F(BatchTest, ZeroThreadsMeansHardwareConcurrency) {
  BatchOptions opts;
  opts.threads = 0;
  const auto batch =
      RunKtgBatch(graph_, *index_, BfsFactory(), queries_, opts);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->results.size(), queries_.size());
}

TEST_F(BatchTest, EmptyBatch) {
  const auto batch = RunKtgBatch(graph_, *index_, BfsFactory(), {});
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->results.empty());
  EXPECT_EQ(batch->latency.count, 0u);
}

TEST_F(BatchTest, WorksWithSharedIndexCheckers) {
  // NLRNL factories that hand each worker its own index copy.
  auto factory = [this] {
    return std::make_unique<NlrnlIndex>(graph_.graph());
  };
  BatchOptions opts;
  opts.threads = 3;
  const auto batch = RunKtgBatch(graph_, *index_, factory, queries_, opts);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->results.size(), queries_.size());
}

}  // namespace
}  // namespace ktg
