// Copyright (c) 2026 The ktg Authors.
// NL (h-hop neighbors list) index tests: structure of the stored levels,
// Algorithm 2's expansion path, memoization growth and option behaviour.
// (Cross-implementation equivalence lives in checker_equivalence_test.cc;
// dynamic updates in index_update_test.cc.)

#include <gtest/gtest.h>

#include "datagen/generators.h"
#include "graph/bfs.h"
#include "index/bfs_checker.h"
#include "index/nl_index.h"
#include "util/rng.h"

namespace ktg {
namespace {

TEST(NlIndexTest, StoredLevelsMatchBfsLevels) {
  Rng rng(61);
  const Graph g = BarabasiAlbert(120, 3, rng);
  const NlIndex nl(g);
  BoundedBfs bfs(g);
  for (VertexId v = 0; v < g.num_vertices(); v += 13) {
    const auto levels = bfs.Levels(v, nl.base_hops(v));
    ASSERT_EQ(nl.stored_hops(v), levels.size());
    for (uint32_t i = 0; i < levels.size(); ++i) {
      EXPECT_EQ(nl.Level(v, i), levels[i]) << "v=" << v << " level " << i;
    }
  }
}

TEST(NlIndexTest, BaseHopsIsArgmaxLevel) {
  Rng rng(63);
  const Graph g = WattsStrogatz(200, 3, 0.1, rng);
  const NlIndex nl(g);
  BoundedBfs bfs(g);
  for (VertexId v = 0; v < g.num_vertices(); v += 17) {
    const auto levels = bfs.Levels(v, kUnreachable - 1);
    size_t best = 0;
    uint32_t h = 1;
    for (uint32_t i = 0; i < levels.size() && i < 8; ++i) {
      if (levels[i].size() > best) {
        best = levels[i].size();
        h = i + 1;
      }
    }
    if (levels.empty()) h = 0;
    EXPECT_EQ(nl.base_hops(v), h) << "v=" << v;
  }
}

TEST(NlIndexTest, MaxStoredHopsCapsBase) {
  Rng rng(65);
  const Graph g = PathGraph(50);  // argmax level would be deep
  NlIndexOptions opts;
  opts.max_stored_hops = 2;
  const NlIndex nl(g, opts);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LE(nl.base_hops(v), 2u);
  }
}

TEST(NlIndexTest, ExpansionAnswersBeyondHorizon) {
  // On a path, force h = 1 and ask about distances far beyond it.
  NlIndexOptions opts;
  opts.max_stored_hops = 1;
  NlIndex nl(PathGraph(30), opts);
  EXPECT_FALSE(nl.IsFartherThan(0, 5, 5));   // distance 5
  EXPECT_TRUE(nl.IsFartherThan(0, 5, 4));    // 5 > 4
  EXPECT_FALSE(nl.IsFartherThan(0, 29, 29));
  EXPECT_TRUE(nl.IsFartherThan(0, 29, 28));
}

TEST(NlIndexTest, MemoizationGrowsStoredLevels) {
  NlIndexOptions opts;
  opts.max_stored_hops = 1;
  opts.memoize_expansions = true;
  NlIndex nl(PathGraph(20), opts);
  const uint32_t before = nl.stored_hops(10);
  EXPECT_EQ(before, 1u);
  nl.IsFartherThan(2, 10, 6);  // consults vertex 10, expands to 6 levels
  EXPECT_GE(nl.stored_hops(10), 6u);
  const size_t mem_after_expand = nl.MemoryBytes();
  // Re-asking does not grow further.
  nl.IsFartherThan(2, 10, 6);
  EXPECT_EQ(nl.MemoryBytes(), mem_after_expand);
}

TEST(NlIndexTest, NoMemoizationKeepsFootprint) {
  NlIndexOptions opts;
  opts.max_stored_hops = 1;
  opts.memoize_expansions = false;
  NlIndex nl(PathGraph(20), opts);
  const size_t before = nl.MemoryBytes();
  EXPECT_FALSE(nl.IsFartherThan(2, 10, 8));
  EXPECT_TRUE(nl.IsFartherThan(0, 19, 18));
  EXPECT_EQ(nl.MemoryBytes(), before);
  EXPECT_EQ(nl.stored_hops(10), 1u);
}

TEST(NlIndexTest, SelfAndAdjacent) {
  const Graph g = CycleGraph(6);
  NlIndex nl(g);
  EXPECT_FALSE(nl.IsFartherThan(2, 2, 3));  // distance 0
  EXPECT_FALSE(nl.IsFartherThan(2, 3, 1));  // adjacent
  EXPECT_TRUE(nl.IsFartherThan(0, 3, 2));   // opposite side, distance 3
  EXPECT_TRUE(nl.IsFartherThan(1, 4, 0));   // k = 0, distinct vertices
}

TEST(NlIndexTest, DisconnectedVerticesAreFarther) {
  GraphBuilder b(5);
  b.AddEdge(0, 1);
  b.AddEdge(2, 3);
  NlIndex nl(b.Build());
  EXPECT_TRUE(nl.IsFartherThan(0, 3, 10));
  EXPECT_TRUE(nl.IsFartherThan(4, 0, 10));  // isolated vertex
}

TEST(NlIndexTest, CountsChecks) {
  NlIndex nl(CycleGraph(8));
  EXPECT_EQ(nl.num_checks(), 0u);
  nl.IsFartherThan(0, 4, 2);
  nl.IsFartherThan(1, 5, 2);
  EXPECT_EQ(nl.num_checks(), 2u);
  nl.ResetStats();
  EXPECT_EQ(nl.num_checks(), 0u);
}

TEST(NlIndexTest, MemoryAccountingIsPlausible) {
  Rng rng(67);
  const Graph g = BarabasiAlbert(200, 4, rng);
  const NlIndex nl(g);
  // At minimum the 1-hop lists (2m entries when every h >= 1) are stored.
  EXPECT_GT(nl.MemoryBytes(), g.num_edges() * sizeof(VertexId));
}

}  // namespace
}  // namespace ktg
