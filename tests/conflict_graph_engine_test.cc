// Copyright (c) 2026 The ktg Authors.
// Conflict-graph engine tests: exactness versus brute force and the
// paper's engine across random instances, plus its specific options.

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/conflict_graph_engine.h"
#include "core/ktg_engine.h"
#include "core/paper_example.h"
#include "datagen/generators.h"
#include "datagen/keyword_assigner.h"
#include "datagen/query_gen.h"
#include "index/bfs_checker.h"
#include "keywords/inverted_index.h"

namespace ktg {
namespace {

std::vector<int> Counts(const std::vector<Group>& groups) {
  std::vector<int> out;
  for (const auto& g : groups) out.push_back(g.covered());
  return out;
}

TEST(ConflictGraphEngineTest, PaperExample) {
  const AttributedGraph g = PaperExampleGraph();
  const InvertedIndex idx(g);
  BfsChecker checker(g.graph());
  const KtgQuery q = PaperExampleQuery(g);

  const auto r = RunKtgConflictGraph(g, idx, checker, q);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->groups.size(), 2u);
  EXPECT_EQ(r->groups[0].covered(), 4);
  EXPECT_EQ(r->groups[1].covered(), 4);
  for (const auto& grp : r->groups) {
    EXPECT_TRUE(IsKDistanceGroup(grp.members, q.tenuity, checker));
  }
}

TEST(ConflictGraphEngineTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(0xCF61);
  for (int round = 0; round < 10; ++round) {
    KeywordModel model;
    model.vocabulary_size = 12;
    model.min_per_vertex = 1;
    model.max_per_vertex = 3;
    const AttributedGraph g = AssignKeywords(
        round % 2 == 0 ? ErdosRenyi(34, 0.08, rng)
                       : BarabasiAlbert(36, 2, rng),
        model, rng);
    const InvertedIndex idx(g);

    WorkloadOptions wopts;
    wopts.num_queries = 2;
    wopts.keyword_count = 4 + round % 3;
    wopts.group_size = 2 + round % 3;
    wopts.tenuity = static_cast<HopDistance>(1 + round % 3);
    wopts.top_n = 1 + round % 4;
    for (const auto& q : GenerateWorkload(g, wopts, rng)) {
      BfsChecker c1(g.graph()), c2(g.graph());
      const auto truth = BruteForceKtg(g, idx, c1, q);
      const auto got = RunKtgConflictGraph(g, idx, c2, q);
      ASSERT_TRUE(truth.ok() && got.ok());
      EXPECT_EQ(Counts(got->groups), Counts(truth->groups))
          << "round " << round << " p=" << q.group_size
          << " k=" << q.tenuity << " N=" << q.top_n;
      BfsChecker validator(g.graph());
      for (const auto& grp : got->groups) {
        EXPECT_EQ(grp.members.size(), q.group_size);
        EXPECT_TRUE(IsKDistanceGroup(grp.members, q.tenuity, validator));
      }
    }
  }
}

TEST(ConflictGraphEngineTest, AgreesWithPaperEngine) {
  Rng rng(0xCF62);
  KeywordModel model;
  model.vocabulary_size = 25;
  const AttributedGraph g =
      AssignKeywords(WattsStrogatz(120, 3, 0.2, rng), model, rng);
  const InvertedIndex idx(g);
  WorkloadOptions wopts;
  wopts.num_queries = 4;
  wopts.group_size = 4;
  wopts.tenuity = 2;
  wopts.top_n = 3;
  for (const auto& q : GenerateWorkload(g, wopts, rng)) {
    BfsChecker c1(g.graph()), c2(g.graph());
    const auto a = RunKtg(g, idx, c1, q);
    const auto b = RunKtgConflictGraph(g, idx, c2, q);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(Counts(a->groups), Counts(b->groups));
  }
}

TEST(ConflictGraphEngineTest, CandidateBudgetEnforced) {
  const AttributedGraph g = PaperExampleGraph();
  const InvertedIndex idx(g);
  BfsChecker checker(g.graph());
  ConflictEngineOptions opts;
  opts.max_candidates = 3;  // the example has 10 candidates
  const auto r =
      RunKtgConflictGraph(g, idx, checker, PaperExampleQuery(g), opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(ConflictGraphEngineTest, NodeBudgetStopsSearch) {
  const AttributedGraph g = PaperExampleGraph();
  const InvertedIndex idx(g);
  BfsChecker checker(g.graph());
  ConflictEngineOptions opts;
  opts.max_nodes = 2;
  const auto r =
      RunKtgConflictGraph(g, idx, checker, PaperExampleQuery(g), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->stats.nodes_expanded, 3u);
}

TEST(ConflictGraphEngineTest, CountsConflictEdges) {
  const AttributedGraph g = PaperExampleGraph();
  const InvertedIndex idx(g);
  BfsChecker checker(g.graph());
  const auto r = RunKtgConflictGraph(g, idx, checker, PaperExampleQuery(g));
  ASSERT_TRUE(r.ok());
  // k-line pairs among the 10 candidates (k=1): at least the direct edges
  // between candidate vertices.
  EXPECT_GT(r->stats.kline_filtered, 0u);
  EXPECT_GT(r->stats.distance_checks, 40u);  // C(10,2) pairwise checks
}

}  // namespace
}  // namespace ktg
