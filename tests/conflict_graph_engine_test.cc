// Copyright (c) 2026 The ktg Authors.
// Conflict-graph engine tests: exactness versus brute force and the
// paper's engine across random instances, plus its specific options.

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/conflict_graph_engine.h"
#include "core/ktg_engine.h"
#include "core/paper_example.h"
#include "datagen/generators.h"
#include "datagen/keyword_assigner.h"
#include "datagen/query_gen.h"
#include "index/bfs_checker.h"
#include "index/khop_bitmap.h"
#include "keywords/inverted_index.h"

namespace ktg {
namespace {

std::vector<int> Counts(const std::vector<Group>& groups) {
  std::vector<int> out;
  for (const auto& g : groups) out.push_back(g.covered());
  return out;
}

TEST(ConflictGraphEngineTest, PaperExample) {
  const AttributedGraph g = PaperExampleGraph();
  const InvertedIndex idx(g);
  BfsChecker checker(g.graph());
  const KtgQuery q = PaperExampleQuery(g);

  const auto r = RunKtgConflictGraph(g, idx, checker, q);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->groups.size(), 2u);
  EXPECT_EQ(r->groups[0].covered(), 4);
  EXPECT_EQ(r->groups[1].covered(), 4);
  for (const auto& grp : r->groups) {
    EXPECT_TRUE(IsKDistanceGroup(grp.members, q.tenuity, checker));
  }
}

TEST(ConflictGraphEngineTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(0xCF61);
  for (int round = 0; round < 10; ++round) {
    KeywordModel model;
    model.vocabulary_size = 12;
    model.min_per_vertex = 1;
    model.max_per_vertex = 3;
    const AttributedGraph g = AssignKeywords(
        round % 2 == 0 ? ErdosRenyi(34, 0.08, rng)
                       : BarabasiAlbert(36, 2, rng),
        model, rng);
    const InvertedIndex idx(g);

    WorkloadOptions wopts;
    wopts.num_queries = 2;
    wopts.keyword_count = 4 + round % 3;
    wopts.group_size = 2 + round % 3;
    wopts.tenuity = static_cast<HopDistance>(1 + round % 3);
    wopts.top_n = 1 + round % 4;
    for (const auto& q : GenerateWorkload(g, wopts, rng)) {
      BfsChecker c1(g.graph()), c2(g.graph());
      const auto truth = BruteForceKtg(g, idx, c1, q);
      const auto got = RunKtgConflictGraph(g, idx, c2, q);
      ASSERT_TRUE(truth.ok() && got.ok());
      EXPECT_EQ(Counts(got->groups), Counts(truth->groups))
          << "round " << round << " p=" << q.group_size
          << " k=" << q.tenuity << " N=" << q.top_n;
      BfsChecker validator(g.graph());
      for (const auto& grp : got->groups) {
        EXPECT_EQ(grp.members.size(), q.group_size);
        EXPECT_TRUE(IsKDistanceGroup(grp.members, q.tenuity, validator));
      }
    }
  }
}

TEST(ConflictGraphEngineTest, AgreesWithPaperEngine) {
  Rng rng(0xCF62);
  KeywordModel model;
  model.vocabulary_size = 25;
  const AttributedGraph g =
      AssignKeywords(WattsStrogatz(120, 3, 0.2, rng), model, rng);
  const InvertedIndex idx(g);
  WorkloadOptions wopts;
  wopts.num_queries = 4;
  wopts.group_size = 4;
  wopts.tenuity = 2;
  wopts.top_n = 3;
  for (const auto& q : GenerateWorkload(g, wopts, rng)) {
    BfsChecker c1(g.graph()), c2(g.graph());
    const auto a = RunKtg(g, idx, c1, q);
    const auto b = RunKtgConflictGraph(g, idx, c2, q);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(Counts(a->groups), Counts(b->groups));
  }
}

TEST(ConflictGraphEngineTest, CandidateBudgetEnforced) {
  const AttributedGraph g = PaperExampleGraph();
  const InvertedIndex idx(g);
  BfsChecker checker(g.graph());
  ConflictEngineOptions opts;
  opts.max_candidates = 3;  // the example has 10 candidates
  const auto r =
      RunKtgConflictGraph(g, idx, checker, PaperExampleQuery(g), opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(ConflictGraphEngineTest, NodeBudgetStopsSearch) {
  const AttributedGraph g = PaperExampleGraph();
  const InvertedIndex idx(g);
  BfsChecker checker(g.graph());
  ConflictEngineOptions opts;
  opts.max_nodes = 2;
  const auto r =
      RunKtgConflictGraph(g, idx, checker, PaperExampleQuery(g), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->stats.nodes_expanded, 3u);
}

TEST(ConflictGraphEngineTest, CountsConflictEdges) {
  const AttributedGraph g = PaperExampleGraph();
  const InvertedIndex idx(g);
  BfsChecker checker(g.graph());

  // Pairwise construction pays C(10,2) checker probes up front.
  ConflictEngineOptions pairwise;
  pairwise.build = ConflictBuild::kPairwise;
  const auto rp =
      RunKtgConflictGraph(g, idx, checker, PaperExampleQuery(g), pairwise);
  ASSERT_TRUE(rp.ok());
  EXPECT_GT(rp->stats.kline_filtered, 0u);
  EXPECT_GT(rp->stats.distance_checks, 40u);  // C(10,2) pairwise checks

  // The default ball walk finds the same edges with zero checker probes.
  BfsChecker checker2(g.graph());
  const auto rb = RunKtgConflictGraph(g, idx, checker2, PaperExampleQuery(g));
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(rb->stats.kline_filtered, rp->stats.kline_filtered);
  EXPECT_EQ(rb->stats.distance_checks, 0u);
  EXPECT_EQ(Counts(rb->groups), Counts(rp->groups));
}

// Property: all three constructions — pairwise probes, per-candidate BFS
// balls, and KHopBitmap row intersections — produce bit-identical conflict
// matrices with the same edge count.
TEST(ConflictGraphEngineTest, ConstructionStrategiesBitIdentical) {
  Rng rng(0xCF63);
  for (int round = 0; round < 8; ++round) {
    const AttributedGraph g =
        AssignKeywords(round % 2 == 0 ? ErdosRenyi(60, 0.06, rng)
                                      : BarabasiAlbert(64, 2, rng),
                       KeywordModel{}, rng);
    const auto k = static_cast<HopDistance>(1 + round % 3);

    // Every other candidate vertex, unsorted coverage metadata (the
    // construction only reads .vertex).
    std::vector<Candidate> cands;
    for (VertexId v = 0; v < g.num_vertices(); v += 2) {
      Candidate c;
      c.vertex = v;
      cands.push_back(c);
    }

    BfsChecker bfs(g.graph());
    const ConflictAdjacency pw = BuildConflictAdjacency(
        g.graph(), bfs, cands, k, ConflictBuild::kPairwise);
    const ConflictAdjacency ball = BuildConflictAdjacency(
        g.graph(), bfs, cands, k, ConflictBuild::kBallWalk);
    KHopBitmapChecker bitmap(g.graph(), k);
    const ConflictAdjacency rows = BuildConflictAdjacency(
        g.graph(), bitmap, cands, k, ConflictBuild::kBallWalk);

    EXPECT_EQ(pw.edges, ball.edges) << "round " << round << " k=" << int{k};
    EXPECT_EQ(pw.edges, rows.edges) << "round " << round << " k=" << int{k};
    ASSERT_EQ(pw.adj.size(), ball.adj.size());
    ASSERT_EQ(pw.adj.size(), rows.adj.size());
    for (size_t i = 0; i < pw.adj.size(); ++i) {
      EXPECT_TRUE(pw.adj[i] == ball.adj[i]) << "row " << i;
      EXPECT_TRUE(pw.adj[i] == rows.adj[i]) << "row " << i;
    }
  }
}

// Property: the residual bound and the degeneracy order are exact — both
// return the identical coverage profile as the plain configuration, and
// the residual bound never expands more nodes.
TEST(ConflictGraphEngineTest, ResidualBoundAndDegeneracyExact) {
  Rng rng(0xCF64);
  KeywordModel model;
  model.vocabulary_size = 18;
  for (int round = 0; round < 6; ++round) {
    const AttributedGraph g =
        AssignKeywords(WattsStrogatz(90, 3, 0.25, rng), model, rng);
    const InvertedIndex idx(g);
    WorkloadOptions wopts;
    wopts.num_queries = 2;
    wopts.keyword_count = 5;
    wopts.group_size = 3 + round % 2;
    wopts.tenuity = static_cast<HopDistance>(1 + round % 2);
    wopts.top_n = 2;
    for (const auto& q : GenerateWorkload(g, wopts, rng)) {
      BfsChecker checker(g.graph());
      ConflictEngineOptions plain;
      plain.residual_bound = false;
      const auto base = RunKtgConflictGraph(g, idx, checker, q, plain);

      const auto tight =
          RunKtgConflictGraph(g, idx, checker, q, ConflictEngineOptions{});

      ConflictEngineOptions degen;
      degen.degeneracy_order = true;
      const auto reordered = RunKtgConflictGraph(g, idx, checker, q, degen);

      ASSERT_TRUE(base.ok() && tight.ok() && reordered.ok());
      // The residual bound prunes tied-or-worse subtrees only: identical
      // groups (not just coverage), never more nodes.
      EXPECT_EQ(tight->groups, base->groups);
      EXPECT_LE(tight->stats.nodes_expanded, base->stats.nodes_expanded);
      // Degeneracy reorders tie-breaks: the coverage profile must match,
      // membership may differ.
      EXPECT_EQ(Counts(reordered->groups), Counts(base->groups));
      BfsChecker validator(g.graph());
      for (const auto& grp : reordered->groups) {
        EXPECT_TRUE(IsKDistanceGroup(grp.members, q.tenuity, validator));
      }
    }
  }
}

}  // namespace
}  // namespace ktg
