// Copyright (c) 2026 The ktg Authors.
// Randomized differential-testing harness for the cross-query cache.
//
// A seeded generator drives interleaved query/update sequences against one
// evolving small graph and asserts, at every step, that
//
//     cached engine == uncached engine == brute force
//
// — exact group equality between the serial engines (both are
// deterministic, so a cache hit must be bit-identical to a recomputation),
// coverage-profile equality against brute force (the correctness oracle).
// The sweep covers (p, k, N) and cache budgets down to a single-entry
// cache, where every store evicts the previous entry and the hit path is
// exercised only by immediate repeats.
//
// The ParallelBatch test runs the same comparison through the batch runner
// with a cache shared by four workers; it is tsan-labelled, so the TSan CI
// job proves the sharing is race-free.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cache/caching_checker.h"
#include "cache/ktg_cache.h"
#include "core/batch.h"
#include "core/brute_force.h"
#include "core/ktg_engine.h"
#include "datagen/generators.h"
#include "datagen/keyword_assigner.h"
#include "graph/bfs.h"
#include "index/bfs_checker.h"
#include "keywords/inverted_index.h"
#include "util/rng.h"

namespace ktg {
namespace {

std::vector<int> CoverageCounts(const std::vector<Group>& groups) {
  std::vector<int> out;
  out.reserve(groups.size());
  for (const auto& g : groups) out.push_back(g.covered());
  return out;
}

constexpr uint32_t kVocabulary = 10;

AttributedGraph BuildInitialGraph(Rng& rng) {
  Graph topo = ErdosRenyi(24, 0.13, rng);
  KeywordModel model;
  model.vocabulary_size = kVocabulary;
  model.min_per_vertex = 1;
  model.max_per_vertex = 3;
  model.empty_fraction = 0.1;
  return AssignKeywords(std::move(topo), model, rng);
}

// Rebinds keyword assignments (and vocabulary ids) to a new topology.
AttributedGraph RebuildWithTopology(const AttributedGraph& g, Graph topo) {
  AttributedGraphBuilder builder;
  builder.SetGraph(std::move(topo));
  builder.mutable_vocabulary() = g.vocabulary();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const KeywordId kw : g.Keywords(v)) builder.AddKeywordId(v, kw);
  }
  return builder.Build();
}

KtgQuery RandomQuery(Rng& rng) {
  KtgQuery q;
  const size_t num_kw = 3 + rng.Below(3);  // |W_Q| in {3,4,5}
  for (const uint64_t kw : rng.SampleDistinct(kVocabulary, num_kw)) {
    q.keywords.push_back(static_cast<KeywordId>(kw));
  }
  q.group_size = 2 + static_cast<uint32_t>(rng.Below(2));      // p in {2,3}
  q.tenuity = static_cast<HopDistance>(1 + rng.Below(2));      // k in {1,2}
  q.top_n = rng.Chance(0.5) ? 1 : 3;                           // N in {1,3}
  return q;
}

// Flips one random vertex pair: deletes the edge if present (keeping at
// least a few edges around), inserts it otherwise. Notifies the cache with
// the OLD topology, as the invalidation contract requires.
AttributedGraph ApplyRandomUpdate(const AttributedGraph& g, KtgCache& cache,
                                  Rng& rng) {
  const Graph& topo = g.graph();
  const auto n = topo.num_vertices();
  VertexId a = 0, b = 0;
  do {
    a = static_cast<VertexId>(rng.Below(n));
    b = static_cast<VertexId>(rng.Below(n));
  } while (a == b);
  if (topo.HasEdge(a, b) && topo.num_edges() > 4) {
    cache.OnEdgeRemoved(topo, a, b);
    return RebuildWithTopology(g, WithEdgeRemoved(topo, a, b));
  }
  if (!topo.HasEdge(a, b)) {
    cache.OnEdgeInserted(topo, a, b);
    return RebuildWithTopology(g, WithEdgeAdded(topo, a, b));
  }
  return RebuildWithTopology(g, topo);  // no-op round (too few edges)
}

class DifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialTest, CachedEqualsUncachedEqualsBruteForce) {
  const int round = GetParam();
  Rng rng(0xD1FF0000 + round * 7919);

  AttributedGraph g = BuildInitialGraph(rng);

  // Cache-size sweep: a ~single-entry cache (budget 1 byte, one shard —
  // constant eviction), a few KB (heavy churn), and an ample budget.
  CacheOptions copts;
  switch (round % 3) {
    case 0:
      copts.ball_budget_bytes = 1;
      copts.query_budget_bytes = 1;
      copts.shards = 1;
      break;
    case 1:
      copts.ball_budget_bytes = 16 << 10;
      copts.query_budget_bytes = 4 << 10;
      copts.shards = 2;
      break;
    default:
      copts = CacheOptions{};
      break;
  }
  KtgCache cache(copts);

  constexpr int kOps = 90;
  int queries_run = 0, updates_run = 0;
  for (int op = 0; op < kOps; ++op) {
    if (rng.Chance(0.3)) {
      g = ApplyRandomUpdate(g, cache, rng);
      ++updates_run;
      continue;
    }
    ++queries_run;
    const InvertedIndex idx(g);
    const KtgQuery query = RandomQuery(rng);

    BfsChecker oracle_checker(g.graph());
    const auto truth = BruteForceKtg(g, idx, oracle_checker, query);
    ASSERT_TRUE(truth.ok());

    BfsChecker plain_checker(g.graph());
    const auto uncached = RunKtg(g, idx, plain_checker, query, EngineOptions{});
    ASSERT_TRUE(uncached.ok());

    EngineOptions cached_opts;
    cached_opts.cache = &cache;
    CachingChecker cached_checker(std::make_unique<BfsChecker>(g.graph()),
                                  g.graph(), &cache);
    const auto cached = RunKtg(g, idx, cached_checker, query, cached_opts);
    ASSERT_TRUE(cached.ok());
    // Immediate repeat: must be served consistently whether or not the
    // result tier still holds the entry (a 1-entry cache may have evicted
    // it between queries, never *during* one).
    const auto repeat = RunKtg(g, idx, cached_checker, query, cached_opts);
    ASSERT_TRUE(repeat.ok());

    const auto expected = CoverageCounts(truth->groups);
    ASSERT_EQ(CoverageCounts(uncached->groups), expected)
        << "round=" << round << " op=" << op;
    // The serial engine is deterministic, so the cached path must be
    // bit-identical to the uncached one — group members and masks.
    ASSERT_EQ(cached->groups, uncached->groups)
        << "round=" << round << " op=" << op << " epoch=" << cache.epoch();
    ASSERT_EQ(repeat->groups, uncached->groups)
        << "round=" << round << " op=" << op << " (repeat run)";
  }
  // ~63 queries and ~27 updates per round; 16 rounds clear the 1000-op bar.
  EXPECT_GT(queries_run, 0);
  EXPECT_GT(updates_run, 0);
}

INSTANTIATE_TEST_SUITE_P(Rounds, DifferentialTest, ::testing::Range(0, 16));

// Shared-cache batch execution: four workers, interleaved updates between
// batches. Runs under `ctest -L tsan` in the TSan CI job.
TEST(DifferentialParallelTest, SharedCacheBatchMatchesSerialAcrossUpdates) {
  Rng rng(0xBA7C4);
  AttributedGraph g = BuildInitialGraph(rng);
  KtgCache cache;  // ample budget; all workers share it

  for (int phase = 0; phase < 4; ++phase) {
    const InvertedIndex idx(g);

    // A workload with deliberate repeats so the result tier gets concurrent
    // hits, not just concurrent fills.
    std::vector<KtgQuery> workload;
    for (int i = 0; i < 10; ++i) workload.push_back(RandomQuery(rng));
    for (int i = 0; i < 20; ++i) workload.push_back(workload[i % 10]);
    rng.Shuffle(workload);

    BatchOptions bopts;
    bopts.threads = 4;
    bopts.engine.cache = &cache;
    const auto batch = RunKtgBatch(
        g, idx, [&] { return std::make_unique<BfsChecker>(g.graph()); },
        workload, bopts);
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(batch->results.size(), workload.size());

    for (size_t i = 0; i < workload.size(); ++i) {
      BfsChecker checker(g.graph());
      const auto fresh =
          RunKtg(g, idx, checker, workload[i], EngineOptions{});
      ASSERT_TRUE(fresh.ok());
      ASSERT_EQ(batch->results[i].groups, fresh->groups)
          << "phase=" << phase << " query=" << i;
    }

    for (int u = 0; u < 3; ++u) g = ApplyRandomUpdate(g, cache, rng);
  }
  EXPECT_GT(cache.QueryStats().hits + cache.BallStats().hits, 0u);
}

}  // namespace
}  // namespace ktg
