// Copyright (c) 2026 The ktg Authors.
// Unit tests for the cross-query cache: sharded-LRU mechanics, canonical
// query keys (metamorphic permutation/duplication properties), the
// CachingChecker decorator, precise ball invalidation through the
// affected-vertex path, epoch rejection of stale query results (including
// the edge-delete-then-reinsert ABA case) and metric export.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "cache/caching_checker.h"
#include "cache/ktg_cache.h"
#include "cache/query_key.h"
#include "cache/sharded_lru.h"
#include "core/brute_force.h"
#include "core/conflict_graph_engine.h"
#include "core/ktg_engine.h"
#include "datagen/generators.h"
#include "datagen/keyword_assigner.h"
#include "datagen/query_gen.h"
#include "graph/bfs.h"
#include "index/affected.h"
#include "index/bfs_checker.h"
#include "keywords/inverted_index.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "util/sorted_vector.h"

namespace ktg {
namespace {

// --- ShardedLru ------------------------------------------------------------

struct IntHash {
  uint64_t operator()(int x) const { return Mix64(static_cast<uint64_t>(x)); }
};
using IntLru = ShardedLru<int, int, IntHash>;

TEST(ShardedLruTest, PutGetAndMissCounting) {
  IntLru lru(/*budget_bytes=*/1 << 20, /*shards=*/4);
  EXPECT_EQ(lru.Get(1), nullptr);
  lru.Put(1, std::make_shared<int>(10), sizeof(int));
  auto v = lru.Get(1);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 10);
  const CacheTierStats st = lru.Stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.entries, 1u);
  EXPECT_GT(st.bytes, 0u);
}

TEST(ShardedLruTest, EvictsColdEntriesToBudget) {
  // One shard, budget for ~2 entries (entry overhead dominates).
  IntLru lru(2 * (IntLru::kEntryOverhead + 8), 1);
  lru.Put(1, std::make_shared<int>(1), 8);
  lru.Put(2, std::make_shared<int>(2), 8);
  ASSERT_NE(lru.Get(1), nullptr);  // refresh 1; now 2 is coldest
  lru.Put(3, std::make_shared<int>(3), 8);
  EXPECT_NE(lru.Get(1), nullptr);
  EXPECT_EQ(lru.Get(2), nullptr) << "coldest entry should have been evicted";
  EXPECT_NE(lru.Get(3), nullptr);
  EXPECT_GE(lru.Stats().evictions, 1u);
}

TEST(ShardedLruTest, OneByteBudgetStillAdmitsNewest) {
  IntLru lru(/*budget_bytes=*/1, /*shards=*/1);
  for (int i = 0; i < 100; ++i) {
    lru.Put(i, std::make_shared<int>(i), 64);
    auto v = lru.Get(i);
    ASSERT_NE(v, nullptr) << "newest entry must always be admitted";
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(lru.Stats().entries, 1u);
  EXPECT_EQ(lru.Stats().evictions, 99u);
}

TEST(ShardedLruTest, GetIfPresentDoesNotCountMisses) {
  IntLru lru(1 << 20, 1);
  EXPECT_EQ(lru.GetIfPresent(7), nullptr);
  EXPECT_EQ(lru.Stats().misses, 0u);
  lru.Put(7, std::make_shared<int>(7), 8);
  EXPECT_NE(lru.GetIfPresent(7), nullptr);
  EXPECT_EQ(lru.Stats().hits, 1u);
}

TEST(ShardedLruTest, EraseAndEraseIfCountInvalidations) {
  IntLru lru(1 << 20, 4);
  for (int i = 0; i < 10; ++i) lru.Put(i, std::make_shared<int>(i), 8);
  EXPECT_EQ(lru.Erase(3), 1u);
  EXPECT_EQ(lru.Erase(3), 0u);
  EXPECT_EQ(lru.EraseIf([](int k) { return k % 2 == 0; }), 5u);
  EXPECT_EQ(lru.Stats().invalidations, 6u);
  EXPECT_EQ(lru.Stats().entries, 4u);
  EXPECT_EQ(lru.Clear(), 4u);
  EXPECT_EQ(lru.Stats().entries, 0u);
  EXPECT_EQ(lru.Stats().bytes, 0u);
}

// --- Fixtures over small attributed graphs ---------------------------------

AttributedGraph SmallGraph(uint64_t seed, uint32_t n = 30) {
  Rng rng(seed);
  Graph topo = ErdosRenyi(n, 0.12, rng);
  KeywordModel model;
  model.vocabulary_size = 10;
  model.min_per_vertex = 1;
  model.max_per_vertex = 3;
  model.empty_fraction = 0.1;
  return AssignKeywords(std::move(topo), model, rng);
}

KtgQuery SimpleQuery(std::vector<KeywordId> keywords, uint32_t p = 2,
                     HopDistance k = 2, uint32_t n = 2) {
  KtgQuery q;
  q.keywords = std::move(keywords);
  q.group_size = p;
  q.tenuity = k;
  q.top_n = n;
  return q;
}

// --- QueryKey canonicalization ---------------------------------------------

TEST(QueryKeyTest, KeywordPermutationYieldsIdenticalKey) {
  const KtgQuery a = SimpleQuery({3, 1, 7, 2});
  const KtgQuery b = SimpleQuery({7, 2, 3, 1});
  const QueryKey ka =
      CanonicalQueryKey(a, kEngineTagKtg, SortStrategy::kVkcDeg, true);
  const QueryKey kb =
      CanonicalQueryKey(b, kEngineTagKtg, SortStrategy::kVkcDeg, true);
  EXPECT_EQ(ka, kb);
  EXPECT_EQ(ka.Hash(), kb.Hash());
}

TEST(QueryKeyTest, InvalidKeywordsAreCountedNotOrdered) {
  // kInvalidKeyword entries are interchangeable: each widens |W_Q| by one
  // and can never be covered, so only their count is keyed.
  KtgQuery a = SimpleQuery({kInvalidKeyword, 3, kInvalidKeyword, 1});
  KtgQuery b = SimpleQuery({3, 1, kInvalidKeyword, kInvalidKeyword});
  const QueryKey ka =
      CanonicalQueryKey(a, kEngineTagKtg, SortStrategy::kVkcDeg, true);
  const QueryKey kb =
      CanonicalQueryKey(b, kEngineTagKtg, SortStrategy::kVkcDeg, true);
  EXPECT_EQ(ka, kb);
  EXPECT_EQ(ka.invalid_keywords, 2u);
  // One fewer invalid entry is a different query (different denominator).
  KtgQuery c = SimpleQuery({3, 1, kInvalidKeyword});
  EXPECT_NE(CanonicalQueryKey(c, kEngineTagKtg, SortStrategy::kVkcDeg, true),
            ka);
}

TEST(QueryKeyTest, DistinguishesEverythingResultRelevant) {
  const KtgQuery base = SimpleQuery({1, 2, 3});
  const QueryKey k0 =
      CanonicalQueryKey(base, kEngineTagKtg, SortStrategy::kVkcDeg, true);

  KtgQuery q = base;
  q.group_size = 3;
  EXPECT_NE(CanonicalQueryKey(q, kEngineTagKtg, SortStrategy::kVkcDeg, true),
            k0);
  q = base;
  q.tenuity = 1;
  EXPECT_NE(CanonicalQueryKey(q, kEngineTagKtg, SortStrategy::kVkcDeg, true),
            k0);
  q = base;
  q.top_n = 5;
  EXPECT_NE(CanonicalQueryKey(q, kEngineTagKtg, SortStrategy::kVkcDeg, true),
            k0);
  q = base;
  q.excluded_vertices = {4};
  EXPECT_NE(CanonicalQueryKey(q, kEngineTagKtg, SortStrategy::kVkcDeg, true),
            k0);
  // Engine family, sort strategy and tie-break direction select among tied
  // groups, so they key too.
  EXPECT_NE(
      CanonicalQueryKey(base, kEngineTagConflict, SortStrategy::kVkcDeg, true),
      k0);
  EXPECT_NE(CanonicalQueryKey(base, kEngineTagKtg, SortStrategy::kQkc, true),
            k0);
  EXPECT_NE(
      CanonicalQueryKey(base, kEngineTagKtg, SortStrategy::kVkcDeg, false),
      k0);
}

TEST(QueryKeyTest, VertexListsUseSetSemantics) {
  KtgQuery a = SimpleQuery({1, 2});
  a.excluded_vertices = {5, 3, 5, 3};
  a.query_vertices = {9, 8, 9};
  KtgQuery b = SimpleQuery({1, 2});
  b.excluded_vertices = {3, 5};
  b.query_vertices = {8, 9};
  EXPECT_EQ(CanonicalQueryKey(a, kEngineTagKtg, SortStrategy::kVkcDeg, true),
            CanonicalQueryKey(b, kEngineTagKtg, SortStrategy::kVkcDeg, true));
}

// --- CachingChecker --------------------------------------------------------

TEST(CachingCheckerTest, AgreesWithPlainBfsOnAllPairs) {
  const AttributedGraph g = SmallGraph(0xCAFE);
  KtgCache cache;
  CachingChecker cached(std::make_unique<BfsChecker>(g.graph()), g.graph(),
                        &cache);
  BfsChecker plain(g.graph());
  const auto n = g.num_vertices();
  for (HopDistance k = 1; k <= 3; ++k) {
    // Interleave bulk ball materializations so later per-pair checks hit
    // the cached balls — both read paths must agree with plain BFS.
    for (VertexId u = 0; u < n; u += 3) cached.BallWithinK(u, k);
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = 0; v < n; ++v) {
        EXPECT_EQ(cached.IsFartherThan(u, v, k), plain.IsFartherThan(u, v, k))
            << "u=" << u << " v=" << v << " k=" << k;
      }
    }
  }
  EXPECT_GT(cache.BallStats().hits, 0u);
}

TEST(CachingCheckerTest, BallMatchesBfsAndSecondCallHits) {
  const AttributedGraph g = SmallGraph(0xBEEF);
  KtgCache cache;
  CachingChecker checker(std::make_unique<BfsChecker>(g.graph()), g.graph(),
                         &cache);
  BoundedBfs bfs(g.graph());
  const std::vector<VertexId>* ball = checker.BallWithinK(4, 2);
  ASSERT_NE(ball, nullptr);
  EXPECT_EQ(*ball, bfs.Ball(4, 2));
  const CacheTierStats before = cache.BallStats();
  checker.BallWithinK(4, 2);
  EXPECT_EQ(cache.BallStats().hits, before.hits + 1);
  EXPECT_EQ(cache.BallStats().misses, before.misses);
}

// --- Invalidation through the affected-vertex path -------------------------

// Warms a ball entry for every vertex at radius `k`.
void WarmAllBalls(KtgCache& cache, const Graph& topo, HopDistance k) {
  BoundedBfs bfs(topo);
  for (VertexId v = 0; v < topo.num_vertices(); ++v) {
    cache.PutBall(
        v, k, std::make_shared<const std::vector<VertexId>>(bfs.Ball(v, k)));
  }
}

TEST(CacheInvalidationTest, NoStaleBallSurvivesAnUpdate) {
  Rng rng(0xD1FF);
  for (int round = 0; round < 20; ++round) {
    const AttributedGraph g = SmallGraph(0xA100 + round);
    const Graph& topo = g.graph();
    const HopDistance k = static_cast<HopDistance>(1 + round % 3);
    KtgCache cache;
    WarmAllBalls(cache, topo, k);

    // Random update: insert a non-edge (or delete an edge on odd rounds).
    const bool deletion = round % 2 == 1;
    VertexId a = 0, b = 0;
    do {
      a = static_cast<VertexId>(rng.Below(topo.num_vertices()));
      b = static_cast<VertexId>(rng.Below(topo.num_vertices()));
    } while (a == b || topo.HasEdge(a, b) != deletion);

    const auto affected = deletion ? AffectedByDeletion(topo, a, b)
                                   : AffectedByInsertion(topo, a, b);
    if (deletion) {
      cache.OnEdgeRemoved(topo, a, b);
    } else {
      cache.OnEdgeInserted(topo, a, b);
    }
    const Graph updated =
        deletion ? WithEdgeRemoved(topo, a, b) : WithEdgeAdded(topo, a, b);

    BoundedBfs fresh(updated);
    for (VertexId v = 0; v < updated.num_vertices(); ++v) {
      const auto ball = cache.PeekBall(v, k);
      if (SortedContains(affected, v)) {
        EXPECT_EQ(ball, nullptr)
            << "stale ball survived for affected vertex " << v;
      } else if (ball != nullptr) {
        // Survivors must be indistinguishable from recomputation on the
        // updated graph — the correctness claim behind precise
        // invalidation.
        EXPECT_EQ(*ball, fresh.Ball(v, k)) << "v=" << v << " round=" << round;
      }
    }
  }
}

TEST(CacheInvalidationTest, QueryTierRejectsPreEpochEntries) {
  const AttributedGraph g = SmallGraph(0xE10);
  const InvertedIndex idx(g);
  BfsChecker checker(g.graph());
  const KtgQuery query = SimpleQuery({0, 1, 2});

  KtgCache cache;
  EngineOptions opts;
  opts.cache = &cache;
  auto first = RunKtg(g, idx, checker, query, opts);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(cache.QueryStats().entries, 1u);

  // Any topology change voids stored results, hit or not near the groups.
  VertexId a = 0, b = 1;
  while (g.graph().HasEdge(a, b)) ++b;
  cache.OnEdgeInserted(g.graph(), a, b);

  const QueryKey key =
      CanonicalQueryKey(query, kEngineTagKtg, opts.sort, opts.degree_ascending);
  KtgResult out;
  EXPECT_FALSE(cache.LookupQuery(key, g, query, &out));
  EXPECT_EQ(cache.QueryStats().entries, 0u) << "stale entry must be dropped";
  EXPECT_GE(cache.QueryStats().invalidations, 1u);
}

TEST(CacheInvalidationTest, DeleteThenReinsertAbaStillInvalidates) {
  const AttributedGraph g = SmallGraph(0xABA);
  const Graph& topo = g.graph();
  const auto edges = topo.EdgeList();
  ASSERT_FALSE(edges.empty());
  const auto [a, b] = edges[edges.size() / 2];

  KtgCache cache;
  WarmAllBalls(cache, topo, 2);
  const InvertedIndex idx(g);
  BfsChecker checker(g.graph());
  const KtgQuery query = SimpleQuery({0, 1, 2, 3});
  EngineOptions opts;
  opts.cache = &cache;
  auto original = RunKtg(g, idx, checker, query, opts);
  ASSERT_TRUE(original.ok());
  const uint64_t epoch0 = cache.epoch();

  // Delete {a,b} and reinsert it: the final topology is bit-identical to
  // the original, but entries stored before the churn must not be served
  // as if nothing happened (the classic ABA hazard).
  cache.OnEdgeRemoved(topo, a, b);
  const Graph without = WithEdgeRemoved(topo, a, b);
  cache.OnEdgeInserted(without, a, b);
  EXPECT_EQ(cache.epoch(), epoch0 + 2);

  const QueryKey key =
      CanonicalQueryKey(query, kEngineTagKtg, opts.sort, opts.degree_ascending);
  KtgResult out;
  EXPECT_FALSE(cache.LookupQuery(key, g, query, &out))
      << "pre-churn result served after delete+reinsert";

  // Ball entries of vertices affected by either step are gone...
  for (const VertexId v : AffectedByDeletion(topo, a, b)) {
    EXPECT_EQ(cache.PeekBall(v, 2), nullptr);
  }
  // ...and a rerun through the cache repopulates and matches the original
  // (the graph really is back to its old self).
  auto rerun = RunKtg(g, idx, checker, query, opts);
  ASSERT_TRUE(rerun.ok());
  EXPECT_EQ(rerun->groups, original->groups);
}

// --- Metamorphic: permuted / duplicated W_Q --------------------------------

TEST(CacheMetamorphicTest, PermutedKeywordsHitAndMatchFreshRun) {
  Rng rng(0x3E7A);
  for (int round = 0; round < 10; ++round) {
    const AttributedGraph g = SmallGraph(0x5EED + round, 32);
    const InvertedIndex idx(g);

    WorkloadOptions wopts;
    wopts.num_queries = 2;
    wopts.keyword_count = 4;
    wopts.group_size = 2 + round % 2;
    wopts.tenuity = static_cast<HopDistance>(1 + round % 2);
    wopts.top_n = 2;
    const auto queries = GenerateWorkload(g, wopts, rng);

    for (const KtgQuery& query : queries) {
      KtgQuery permuted = query;
      rng.Shuffle(permuted.keywords);

      KtgCache cache;
      EngineOptions opts;
      opts.cache = &cache;
      BfsChecker checker(g.graph());
      auto warm = RunKtg(g, idx, checker, query, opts);
      ASSERT_TRUE(warm.ok());
      const uint64_t hits_before = cache.QueryStats().hits;

      auto from_cache = RunKtg(g, idx, checker, permuted, opts);
      ASSERT_TRUE(from_cache.ok());
      EXPECT_EQ(cache.QueryStats().hits, hits_before + 1)
          << "permuted keywords must map to the same cache key";

      // The served result must be bit-identical (members AND masks) to an
      // uncached run of the permuted query: masks are recomputed against
      // the incoming keyword order on every hit.
      BfsChecker fresh_checker(g.graph());
      auto fresh = RunKtg(g, idx, fresh_checker, permuted, EngineOptions{});
      ASSERT_TRUE(fresh.ok());
      EXPECT_EQ(from_cache->groups, fresh->groups);
      EXPECT_EQ(from_cache->query_keyword_count, fresh->query_keyword_count);
    }
  }
}

TEST(CacheMetamorphicTest, DuplicateKeywordsBehaveIdenticallyCachedOrNot) {
  // ValidateQuery rejects duplicated *valid* keywords; the cached path must
  // reject them the same way (never consult or populate the cache), and
  // duplicated kInvalidKeyword entries — which validation allows — must
  // canonicalize by count.
  const AttributedGraph g = SmallGraph(0xD0B);
  const InvertedIndex idx(g);
  KtgQuery dup = SimpleQuery({1, 2, 1});
  BfsChecker checker(g.graph());

  const auto uncached = RunKtg(g, idx, checker, dup, EngineOptions{});
  KtgCache cache;
  EngineOptions opts;
  opts.cache = &cache;
  const auto cached = RunKtg(g, idx, checker, dup, opts);
  ASSERT_FALSE(uncached.ok());
  ASSERT_FALSE(cached.ok());
  EXPECT_EQ(uncached.status().code(), cached.status().code());
  EXPECT_EQ(cache.QueryStats().entries, 0u);
  EXPECT_EQ(cache.QueryStats().misses, 0u)
      << "invalid queries must not touch the cache";
}

// --- Engine integration ----------------------------------------------------

TEST(EngineCacheTest, SecondRunServesBitIdenticalResultFromCache) {
  const AttributedGraph g = SmallGraph(0xF00D);
  const InvertedIndex idx(g);
  BfsChecker checker(g.graph());
  const KtgQuery query = SimpleQuery({0, 1, 2, 3}, 2, 2, 3);

  KtgCache cache;
  EngineOptions opts;
  opts.cache = &cache;
  auto cold = RunKtg(g, idx, checker, query, opts);
  ASSERT_TRUE(cold.ok());
  auto warm = RunKtg(g, idx, checker, query, opts);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(cache.QueryStats().hits, 1u);
  EXPECT_EQ(warm->groups, cold->groups);
  EXPECT_EQ(warm->query_keyword_count, cold->query_keyword_count);
  EXPECT_EQ(warm->stats.nodes_expanded, 0u) << "hit must skip the search";
}

TEST(EngineCacheTest, EngineTagsDoNotAlias) {
  const AttributedGraph g = SmallGraph(0x7A6);
  const InvertedIndex idx(g);
  BfsChecker checker(g.graph());
  const KtgQuery query = SimpleQuery({0, 1, 2});

  KtgCache cache;
  EngineOptions kopts;
  kopts.cache = &cache;
  ASSERT_TRUE(RunKtg(g, idx, checker, query, kopts).ok());

  ConflictEngineOptions copts;
  copts.cache = &cache;
  const uint64_t hits_before = cache.QueryStats().hits;
  auto conflict = RunKtgConflictGraph(g, idx, checker, query, copts);
  ASSERT_TRUE(conflict.ok());
  EXPECT_EQ(cache.QueryStats().hits, hits_before)
      << "a KtgEngine entry must never serve the conflict engine";
  // But the conflict engine caches under its own tag.
  auto again = RunKtgConflictGraph(g, idx, checker, query, copts);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(cache.QueryStats().hits, hits_before + 1);
  EXPECT_EQ(again->groups, conflict->groups);
}

TEST(EngineCacheTest, TruncatedSearchesBypassTheCache) {
  const AttributedGraph g = SmallGraph(0x77C);
  const InvertedIndex idx(g);
  BfsChecker checker(g.graph());
  const KtgQuery query = SimpleQuery({0, 1, 2, 3}, 3, 1, 2);

  KtgCache cache;
  EngineOptions opts;
  opts.cache = &cache;
  opts.max_nodes = 2;  // truncation: best-effort result
  ASSERT_TRUE(RunKtg(g, idx, checker, query, opts).ok());
  EXPECT_EQ(cache.QueryStats().entries, 0u);
  EXPECT_EQ(cache.QueryStats().misses, 0u);
}

// --- Metrics export --------------------------------------------------------

TEST(CacheMetricsTest, ExportsCountersAndDeltas) {
  const AttributedGraph g = SmallGraph(0x3213);
  KtgCache cache;
  CachingChecker checker(std::make_unique<BfsChecker>(g.graph()), g.graph(),
                         &cache);
  checker.BallWithinK(0, 2);  // miss + fill
  checker.BallWithinK(0, 2);  // hit

  obs::MetricsRegistry registry;
  cache.ExportMetrics(registry);
  EXPECT_EQ(registry.CounterValue("cache.ball.hits"), 1u);
  EXPECT_EQ(registry.CounterValue("cache.ball.misses"), 1u);
  EXPECT_GT(registry.gauge("cache.ball.bytes").value(), 0.0);
  EXPECT_EQ(registry.gauge("cache.ball.entries").value(), 1.0);
  EXPECT_EQ(registry.gauge("cache.epoch").value(), 0.0);

  // Second export adds only the delta since the first.
  checker.BallWithinK(0, 2);  // another hit
  cache.ExportMetrics(registry);
  EXPECT_EQ(registry.CounterValue("cache.ball.hits"), 2u);
  EXPECT_EQ(registry.CounterValue("cache.ball.misses"), 1u);
}

TEST(CacheOptionsTest, MbSplitAndBatchSeeds) {
  const CacheOptions o = CacheOptionsForMb(16);
  EXPECT_EQ(o.ball_budget_bytes + o.query_budget_bytes, 16u << 20);
  EXPECT_GT(o.ball_budget_bytes, o.query_budget_bytes);

  EXPECT_EQ(DeriveBatchSeed(42, 0), 42u) << "batch 0 must replay the master";
  EXPECT_NE(DeriveBatchSeed(42, 1), 42u);
  EXPECT_NE(DeriveBatchSeed(42, 1), DeriveBatchSeed(42, 2));
  EXPECT_NE(DeriveBatchSeed(42, 1), DeriveBatchSeed(43, 1));
}

}  // namespace
}  // namespace ktg
