// Copyright (c) 2026 The ktg Authors.
// Query workload generator tests.

#include <gtest/gtest.h>

#include <set>

#include "datagen/generators.h"
#include "datagen/keyword_assigner.h"
#include "datagen/query_gen.h"

namespace ktg {
namespace {

AttributedGraph TestGraph() {
  Rng rng(0x01);
  KeywordModel model;
  model.vocabulary_size = 60;
  return AssignKeywords(PathGraph(200), model, rng);
}

TEST(QueryGenTest, ProducesRequestedShape) {
  const AttributedGraph g = TestGraph();
  WorkloadOptions opts;
  opts.num_queries = 15;
  opts.keyword_count = 7;
  opts.group_size = 5;
  opts.tenuity = 3;
  opts.top_n = 9;
  Rng rng(2);
  const auto queries = GenerateWorkload(g, opts, rng);
  ASSERT_EQ(queries.size(), 15u);
  for (const auto& q : queries) {
    EXPECT_EQ(q.keywords.size(), 7u);
    EXPECT_EQ(q.group_size, 5u);
    EXPECT_EQ(q.tenuity, 3);
    EXPECT_EQ(q.top_n, 9u);
    std::set<KeywordId> distinct(q.keywords.begin(), q.keywords.end());
    EXPECT_EQ(distinct.size(), q.keywords.size());
    for (const KeywordId kw : q.keywords) EXPECT_LT(kw, g.num_keywords());
    EXPECT_TRUE(ValidateQuery(q, g).ok());
  }
}

TEST(QueryGenTest, DeterministicPerSeed) {
  const AttributedGraph g = TestGraph();
  WorkloadOptions opts;
  Rng a(9), b(9);
  const auto qa = GenerateWorkload(g, opts, a);
  const auto qb = GenerateWorkload(g, opts, b);
  ASSERT_EQ(qa.size(), qb.size());
  for (size_t i = 0; i < qa.size(); ++i) {
    EXPECT_EQ(qa[i].keywords, qb[i].keywords);
  }
}

TEST(QueryGenTest, BiasFavorsPopularKeywords) {
  const AttributedGraph g = TestGraph();
  WorkloadOptions opts;
  opts.num_queries = 200;
  opts.keyword_count = 4;
  opts.keyword_zipf = 1.0;
  Rng rng(11);
  const auto queries = GenerateWorkload(g, opts, rng);
  uint32_t low = 0, high = 0;
  for (const auto& q : queries) {
    for (const KeywordId kw : q.keywords) {
      if (kw < 10) ++low;
      if (kw >= 50) ++high;
    }
  }
  EXPECT_GT(low, 3 * (high + 1));
}

TEST(QueryGenTest, KeywordCountClampedToVocabulary) {
  Rng rng(0x13);
  KeywordModel model;
  model.vocabulary_size = 3;
  const AttributedGraph g = AssignKeywords(PathGraph(20), model, rng);
  WorkloadOptions opts;
  opts.keyword_count = 10;
  Rng qrng(4);
  const auto queries = GenerateWorkload(g, opts, qrng);
  for (const auto& q : queries) EXPECT_EQ(q.keywords.size(), 3u);
}

}  // namespace
}  // namespace ktg
