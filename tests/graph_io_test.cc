// Copyright (c) 2026 The ktg Authors.
// Unit tests for SNAP edge-list I/O.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "datagen/generators.h"
#include "graph/graph_io.h"

namespace ktg {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(GraphIoTest, ParseBasic) {
  const auto r = ParseEdgeList("# comment\n0 1\n1 2\n\n2 0\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_vertices(), 3u);
  EXPECT_EQ(r->num_edges(), 3u);
}

TEST(GraphIoTest, ParseToleratesTabsAndPercentComments) {
  const auto r = ParseEdgeList("% matrix-market style\n0\t5\n5\t6\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_vertices(), 7u);
  EXPECT_EQ(r->num_edges(), 2u);
}

TEST(GraphIoTest, ParseDeduplicates) {
  const auto r = ParseEdgeList("0 1\n1 0\n0 1\n1 1\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_edges(), 1u);  // self-loop and duplicates dropped
}

TEST(GraphIoTest, MalformedLineIsError) {
  const auto r = ParseEdgeList("0 1\nnot an edge\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphIoTest, MissingSecondEndpointIsError) {
  const auto r = ParseEdgeList("0 1\n42\n");
  ASSERT_FALSE(r.ok());
}

TEST(GraphIoTest, MissingFileIsIoError) {
  const auto r = LoadEdgeList("/nonexistent/ktg/edges.txt");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(GraphIoTest, SaveLoadRoundTrip) {
  Rng rng(4);
  const Graph g = BarabasiAlbert(200, 4, rng);
  const std::string path = TempPath("ktg_io_roundtrip.txt");
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  const auto r = LoadEdgeList(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_vertices(), g.num_vertices());
  EXPECT_EQ(r->EdgeList(), g.EdgeList());
  std::remove(path.c_str());
}

TEST(GraphIoTest, EmptyInputIsEmptyGraph) {
  const auto r = ParseEdgeList("");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_vertices(), 0u);
}

}  // namespace
}  // namespace ktg
