// Copyright (c) 2026 The ktg Authors.
// TAGQ baseline tests: the average-coverage objective, its tolerance of
// zero-coverage members (the behaviour Figure 8 criticizes), and optimality
// against a brute-force reference on small instances.

#include <gtest/gtest.h>

#include "core/paper_example.h"
#include "core/tagq.h"
#include "datagen/generators.h"
#include "datagen/keyword_assigner.h"
#include "index/bfs_checker.h"
#include "keywords/inverted_index.h"
#include "util/rng.h"

namespace ktg {
namespace {

// Exhaustive reference for the additive objective.
int BruteBestTagqTotal(const AttributedGraph& g, const KtgQuery& q,
                       DistanceChecker& checker) {
  const uint32_t n = g.num_vertices();
  std::vector<int> qkc(n);
  for (VertexId v = 0; v < n; ++v) {
    qkc[v] = PopCount(CoverMaskOf(g, v, q.keywords));
  }
  int best = -1;
  std::vector<VertexId> members;
  // p <= 3 in these tests: nested loops keep the reference obviously right.
  KTG_CHECK(q.group_size <= 3);
  for (VertexId a = 0; a < n; ++a) {
    if (q.group_size == 1) {
      best = std::max(best, qkc[a]);
      continue;
    }
    for (VertexId b = a + 1; b < n; ++b) {
      if (!checker.IsFartherThan(a, b, q.tenuity)) continue;
      if (q.group_size == 2) {
        best = std::max(best, qkc[a] + qkc[b]);
        continue;
      }
      for (VertexId c = b + 1; c < n; ++c) {
        if (!checker.IsFartherThan(a, c, q.tenuity)) continue;
        if (!checker.IsFartherThan(b, c, q.tenuity)) continue;
        best = std::max(best, qkc[a] + qkc[b] + qkc[c]);
      }
    }
  }
  return best;
}

TEST(TagqTest, PaperExampleOptimalTotal) {
  const AttributedGraph g = PaperExampleGraph();
  BfsChecker checker(g.graph());
  const KtgQuery q = PaperExampleQuery(g);

  const auto r = RunTagq(g, checker, q);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->groups.empty());

  BfsChecker ref(g.graph());
  EXPECT_EQ(r->groups.front().total_covered, BruteBestTagqTotal(g, q, ref));
}

TEST(TagqTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(0x7A6);
  for (int round = 0; round < 6; ++round) {
    KeywordModel model;
    model.vocabulary_size = 10;
    model.min_per_vertex = 0;
    model.max_per_vertex = 2;
    const AttributedGraph g =
        AssignKeywords(ErdosRenyi(28, 0.1, rng), model, rng);
    KtgQuery q;
    for (KeywordId kw = 0; kw < 5; ++kw) q.keywords.push_back(kw);
    q.group_size = 2 + round % 2;
    q.tenuity = static_cast<HopDistance>(1 + round % 2);
    q.top_n = 2;

    BfsChecker checker(g.graph());
    const auto r = RunTagq(g, checker, q);
    ASSERT_TRUE(r.ok());
    BfsChecker ref(g.graph());
    const int best = BruteBestTagqTotal(g, q, ref);
    if (best < 0) {
      EXPECT_TRUE(r->groups.empty());
    } else {
      ASSERT_FALSE(r->groups.empty());
      EXPECT_EQ(r->groups.front().total_covered, best) << "round " << round;
    }
  }
}

TEST(TagqTest, AdmitsZeroCoverageMembers) {
  // A tight clique of experts plus far-apart keyword-less vertices: TAGQ
  // fills the group with zero-coverage members rather than fail — the exact
  // failure mode KTG is designed to rule out.
  AttributedGraphBuilder b;
  GraphBuilder& topo = b.mutable_topology();
  // Experts 0-2 all adjacent (k=1 forbids pairing them).
  topo.AddEdge(0, 1);
  topo.AddEdge(0, 2);
  topo.AddEdge(1, 2);
  // Vertices 3 and 4 isolated, no keywords.
  topo.EnsureVertices(5);
  b.AddKeywords(0, {"a", "b"});
  b.AddKeywords(1, {"a"});
  b.AddKeywords(2, {"b"});
  const AttributedGraph g = b.Build();

  KtgQuery q;
  q.keywords = {g.vocabulary().Find("a"), g.vocabulary().Find("b")};
  q.group_size = 3;
  q.tenuity = 1;
  q.top_n = 1;

  BfsChecker checker(g.graph());
  const auto r = RunTagq(g, checker, q);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->groups.size(), 1u);
  const TagqGroup& grp = r->groups.front();
  EXPECT_EQ(grp.members, (std::vector<VertexId>{0, 3, 4}));
  EXPECT_EQ(grp.total_covered, 2);
  EXPECT_EQ(grp.zero_coverage_members, 2u);
  EXPECT_DOUBLE_EQ(grp.average_coverage(q.num_keywords()), 2.0 / 6.0);
}

TEST(TagqTest, NodeBudgetTruncatesGracefully) {
  const AttributedGraph g = PaperExampleGraph();
  BfsChecker checker(g.graph());
  TagqOptions opts;
  opts.max_nodes = 3;
  const auto r = RunTagq(g, checker, PaperExampleQuery(g), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->stats.nodes_expanded, 4u);
}

TEST(TagqTest, RejectsMalformedQuery) {
  const AttributedGraph g = PaperExampleGraph();
  BfsChecker checker(g.graph());
  KtgQuery q = PaperExampleQuery(g);
  q.top_n = 0;
  EXPECT_FALSE(RunTagq(g, checker, q).ok());
}

}  // namespace
}  // namespace ktg
