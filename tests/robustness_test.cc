// Copyright (c) 2026 The ktg Authors.
// Robustness suite: hostile and degenerate inputs must produce Status
// errors or sane empty results — never crashes or silent corruption.

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/dktg_greedy.h"
#include "core/ktg_engine.h"
#include "core/paper_example.h"
#include "datagen/generators.h"
#include "graph/graph_io.h"
#include "index/bfs_checker.h"
#include "keywords/inverted_index.h"
#include "util/rng.h"

namespace ktg {
namespace {

TEST(RobustnessTest, RandomGarbageEdgeLists) {
  Rng rng(0x6AB);
  const char alphabet[] = "0123456789 ab#\t-%";
  for (int trial = 0; trial < 50; ++trial) {
    std::string text;
    const size_t len = rng.Below(200);
    for (size_t i = 0; i < len; ++i) {
      char c = alphabet[rng.Below(sizeof(alphabet) - 1)];
      if (rng.Chance(0.1)) c = '\n';
      text.push_back(c);
    }
    // Must either parse or fail cleanly.
    const auto r = ParseEdgeList(text);
    if (r.ok()) {
      EXPECT_LE(r->num_edges() * 2, r->num_vertices() * uint64_t{r->num_vertices()});
    } else {
      EXPECT_FALSE(r.status().message().empty());
    }
  }
}

TEST(RobustnessTest, DuplicateQueryKeywordsRejected) {
  const AttributedGraph g = PaperExampleGraph();
  const InvertedIndex idx(g);
  BfsChecker checker(g.graph());
  KtgQuery q = PaperExampleQuery(g);
  q.keywords.push_back(q.keywords.front());  // duplicate SN
  const auto r = RunKtg(g, idx, checker, q);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(RobustnessTest, RepeatedUnknownKeywordsAllowed) {
  // Multiple distinct unknown terms all map to kInvalidKeyword; they count
  // toward |W_Q| but are not duplicates of each other.
  const AttributedGraph g = PaperExampleGraph();
  const InvertedIndex idx(g);
  BfsChecker checker(g.graph());
  const std::string terms[] = {"SN", "no-such-term", "also-missing"};
  const KtgQuery q = MakeQuery(g, terms, 2, 1, 1);
  const auto r = RunKtg(g, idx, checker, q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  if (!r->groups.empty()) {
    EXPECT_LE(r->groups.front().covered(), 1);  // only SN is coverable
  }
}

TEST(RobustnessTest, QueryOnEmptyGraph) {
  AttributedGraphBuilder b;
  b.mutable_vocabulary().Intern("x");
  const AttributedGraph g = b.Build();
  const InvertedIndex idx(g);
  BfsChecker checker(g.graph());
  KtgQuery q;
  q.keywords = {0};
  q.group_size = 1;
  q.top_n = 1;
  const auto r = RunKtg(g, idx, checker, q);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->groups.empty());
}

TEST(RobustnessTest, QueryVertexOutOfRangeRejected) {
  const AttributedGraph g = PaperExampleGraph();
  const InvertedIndex idx(g);
  BfsChecker checker(g.graph());
  KtgQuery q = PaperExampleQuery(g);
  q.query_vertices = {500};
  EXPECT_FALSE(RunKtg(g, idx, checker, q).ok());
}

TEST(RobustnessTest, ExcludingEveryCandidateYieldsEmpty) {
  const AttributedGraph g = PaperExampleGraph();
  const InvertedIndex idx(g);
  BfsChecker checker(g.graph());
  KtgQuery q = PaperExampleQuery(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    q.excluded_vertices.push_back(v);
  }
  const auto r = RunKtg(g, idx, checker, q);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->groups.empty());
}

TEST(RobustnessTest, DktgWithSixtyFourKeywords) {
  // The mask type's upper bound exactly.
  AttributedGraphBuilder b;
  b.SetGraph(PathGraph(70));
  for (VertexId v = 0; v < 64; ++v) {
    b.AddKeyword(v, "kw" + std::to_string(v));
  }
  const AttributedGraph g = b.Build();
  const InvertedIndex idx(g);
  BfsChecker checker(g.graph());
  KtgQuery q;
  for (KeywordId kw = 0; kw < 64; ++kw) q.keywords.push_back(kw);
  q.group_size = 3;
  q.tenuity = 2;
  q.top_n = 2;
  const auto r = RunDktgGreedy(g, idx, checker, q);
  ASSERT_TRUE(r.ok());
  for (const auto& grp : r->groups) {
    EXPECT_TRUE(IsKDistanceGroup(grp.members, q.tenuity, checker));
  }

  // 65 keywords must be rejected, not wrapped.
  q.keywords.push_back(kInvalidKeyword);
  EXPECT_FALSE(RunKtg(g, idx, checker, q).ok());
}

TEST(RobustnessTest, SelfLoopAndDuplicateHeavyInput) {
  GraphBuilder b;
  Rng rng(0x5eff);
  for (int i = 0; i < 2000; ++i) {
    const auto u = static_cast<VertexId>(rng.Below(30));
    const auto v = static_cast<VertexId>(rng.Below(30));
    b.AddEdge(u, v);
  }
  const Graph g = b.Build();
  EXPECT_LE(g.num_edges(), 30u * 29 / 2);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_FALSE(g.HasEdge(v, v));
    const auto nbrs = g.Neighbors(v);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    EXPECT_TRUE(std::adjacent_find(nbrs.begin(), nbrs.end()) == nbrs.end());
  }
}

}  // namespace
}  // namespace ktg
