// Copyright (c) 2026 The ktg Authors.
// End-to-end integration: build a (tiny) preset dataset, generate a
// workload, run every published algorithm configuration and cross-check
// results, invariants and index agreement — the whole paper pipeline in
// miniature.

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/dktg_greedy.h"
#include "core/ktg_engine.h"
#include "core/tagq.h"
#include "datagen/presets.h"
#include "datagen/query_gen.h"
#include "index/bfs_checker.h"
#include "index/nl_index.h"
#include "index/nlrnl_index.h"
#include "keywords/inverted_index.h"

namespace ktg {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto spec = GetPreset("gowalla", 0.05);  // ~336 vertices
    ASSERT_TRUE(spec.ok());
    graph_ = new AttributedGraph(BuildDataset(*spec));
    index_ = new InvertedIndex(*graph_);
  }
  static void TearDownTestSuite() {
    delete index_;
    delete graph_;
    index_ = nullptr;
    graph_ = nullptr;
  }

  static AttributedGraph* graph_;
  static InvertedIndex* index_;
};

AttributedGraph* IntegrationTest::graph_ = nullptr;
InvertedIndex* IntegrationTest::index_ = nullptr;

TEST_F(IntegrationTest, AllPublishedConfigurationsAgree) {
  WorkloadOptions wopts;
  wopts.num_queries = 4;
  wopts.keyword_count = 5;
  wopts.group_size = 3;
  wopts.tenuity = 2;
  wopts.top_n = 3;
  Rng rng(0x1B7);
  const auto queries = GenerateWorkload(*graph_, wopts, rng);

  NlIndex nl(graph_->graph());
  NlrnlIndex nlrnl(graph_->graph());
  BfsChecker bfs(graph_->graph());

  for (const auto& query : queries) {
    // The four named KTG configurations of Section VII.
    struct Run {
      const char* name;
      SortStrategy sort;
      DistanceChecker* checker;
    };
    std::vector<Run> runs = {
        {"KTG-QKC-NLRNL", SortStrategy::kQkc, &nlrnl},
        {"KTG-VKC-NL", SortStrategy::kVkc, &nl},
        {"KTG-VKC-NLRNL", SortStrategy::kVkc, &nlrnl},
        {"KTG-VKC-DEG-NLRNL", SortStrategy::kVkcDeg, &nlrnl},
    };
    std::vector<int> reference;
    for (const auto& run : runs) {
      EngineOptions opts;
      opts.sort = run.sort;
      const auto r = RunKtg(*graph_, *index_, *run.checker, query, opts);
      ASSERT_TRUE(r.ok()) << run.name;
      std::vector<int> counts;
      for (const auto& grp : r->groups) counts.push_back(grp.covered());
      if (reference.empty() && !counts.empty()) {
        reference = counts;
      } else if (!reference.empty()) {
        EXPECT_EQ(counts, reference) << run.name;
      }
      // Invariants.
      for (const auto& grp : r->groups) {
        ASSERT_EQ(grp.members.size(), query.group_size);
        EXPECT_TRUE(IsKDistanceGroup(grp.members, query.tenuity, bfs));
      }
    }
  }
}

TEST_F(IntegrationTest, BruteForceSpotCheck) {
  WorkloadOptions wopts;
  wopts.num_queries = 1;
  wopts.keyword_count = 4;
  wopts.group_size = 2;
  wopts.tenuity = 2;
  wopts.top_n = 2;
  Rng rng(0x1B8);
  const auto queries = GenerateWorkload(*graph_, wopts, rng);

  BfsChecker c1(graph_->graph()), c2(graph_->graph());
  const auto truth = BruteForceKtg(*graph_, *index_, c1, queries[0]);
  const auto fast = RunKtg(*graph_, *index_, c2, queries[0]);
  ASSERT_TRUE(truth.ok() && fast.ok());
  ASSERT_EQ(truth->groups.size(), fast->groups.size());
  for (size_t i = 0; i < truth->groups.size(); ++i) {
    EXPECT_EQ(truth->groups[i].covered(), fast->groups[i].covered());
  }
}

TEST_F(IntegrationTest, DktgProducesDiverseFeasibleGroups) {
  WorkloadOptions wopts;
  wopts.num_queries = 2;
  wopts.keyword_count = 5;
  wopts.group_size = 3;
  wopts.tenuity = 1;
  wopts.top_n = 3;
  Rng rng(0x1B9);
  BfsChecker bfs(graph_->graph());
  for (const auto& query : GenerateWorkload(*graph_, wopts, rng)) {
    const auto r = RunDktgGreedy(*graph_, *index_, bfs, query);
    ASSERT_TRUE(r.ok());
    if (r->groups.size() >= 2) {
      EXPECT_DOUBLE_EQ(r->diversity, 1.0);  // greedy groups are disjoint
    }
    for (const auto& grp : r->groups) {
      EXPECT_TRUE(IsKDistanceGroup(grp.members, query.tenuity, bfs));
    }
  }
}

TEST_F(IntegrationTest, TagqComparesAsInCaseStudy) {
  WorkloadOptions wopts;
  wopts.num_queries = 1;
  wopts.keyword_count = 5;
  wopts.group_size = 3;
  wopts.tenuity = 2;
  wopts.top_n = 3;
  Rng rng(0x1BA);
  const auto query = GenerateWorkload(*graph_, wopts, rng)[0];

  BfsChecker c1(graph_->graph()), c2(graph_->graph());
  const auto ktg = RunKtg(*graph_, *index_, c1, query);
  const auto tagq = RunTagq(*graph_, c2, query);
  ASSERT_TRUE(ktg.ok() && tagq.ok());
  // Both respect the social constraint...
  BfsChecker validator(graph_->graph());
  for (const auto& grp : tagq->groups) {
    EXPECT_TRUE(IsKDistanceGroup(grp.members, query.tenuity, validator));
  }
  // ...but only KTG guarantees per-member coverage.
  for (const auto& grp : ktg->groups) {
    for (const VertexId m : grp.members) {
      EXPECT_GT(PopCount(CoverMaskOf(*graph_, m, query.keywords)), 0);
    }
  }
}

TEST_F(IntegrationTest, IndexStatsAreConsistent) {
  NlIndex nl(graph_->graph());
  NlrnlIndex nlrnl(graph_->graph());
  EXPECT_GT(nl.MemoryBytes(), 0u);
  EXPECT_GT(nlrnl.MemoryBytes(), 0u);
  EXPECT_EQ(nl.graph().num_edges(), graph_->graph().num_edges());
  EXPECT_EQ(nlrnl.graph().num_edges(), graph_->graph().num_edges());
}

}  // namespace
}  // namespace ktg
