// Copyright (c) 2026 The ktg Authors.
// BFS machinery tests: bounded distances, bidirectional search, balls,
// levels and eccentricity, cross-checked against an all-pairs reference.

#include <gtest/gtest.h>

#include <limits>

#include "datagen/generators.h"
#include "graph/bfs.h"
#include "util/rng.h"

namespace ktg {
namespace {

// Floyd–Warshall reference on hop counts.
std::vector<std::vector<uint32_t>> AllPairs(const Graph& g) {
  const uint32_t n = g.num_vertices();
  constexpr uint32_t kInf = std::numeric_limits<uint32_t>::max() / 4;
  std::vector<std::vector<uint32_t>> d(n, std::vector<uint32_t>(n, kInf));
  for (uint32_t i = 0; i < n; ++i) d[i][i] = 0;
  for (const auto& [u, v] : g.EdgeList()) d[u][v] = d[v][u] = 1;
  for (uint32_t k = 0; k < n; ++k) {
    for (uint32_t i = 0; i < n; ++i) {
      for (uint32_t j = 0; j < n; ++j) {
        d[i][j] = std::min(d[i][j], d[i][k] + d[k][j]);
      }
    }
  }
  return d;
}

constexpr uint32_t kInf = std::numeric_limits<uint32_t>::max() / 4;

TEST(BfsTest, PathGraphDistances) {
  const Graph g = PathGraph(10);
  BoundedBfs bfs(g);
  EXPECT_EQ(bfs.Distance(0, 9, 20), 9);
  EXPECT_EQ(bfs.Distance(0, 9, 9), 9);
  EXPECT_EQ(bfs.Distance(0, 9, 8), kUnreachable);
  EXPECT_EQ(bfs.Distance(4, 4, 0), 0);
  EXPECT_EQ(bfs.Distance(3, 7, 4), 4);
}

TEST(BfsTest, DisconnectedIsUnreachable) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(2, 3);
  const Graph g = b.Build();
  BoundedBfs bfs(g);
  EXPECT_EQ(bfs.Distance(0, 3, 100), kUnreachable);
  EXPECT_EQ(bfs.DistanceBidirectional(0, 3, 100), kUnreachable);
}

TEST(BfsTest, BidirectionalMatchesUnidirectional) {
  Rng rng(31);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = ErdosRenyi(60, 0.06, rng);
    BoundedBfs bfs(g);
    const auto ref = AllPairs(g);
    for (int i = 0; i < 200; ++i) {
      const auto s = static_cast<VertexId>(rng.Below(g.num_vertices()));
      const auto t = static_cast<VertexId>(rng.Below(g.num_vertices()));
      for (const HopDistance k : {1, 2, 3, 5}) {
        const HopDistance uni = bfs.Distance(s, t, k);
        const HopDistance bi = bfs.DistanceBidirectional(s, t, k);
        const uint32_t truth = ref[s][t];
        if (truth <= k) {
          EXPECT_EQ(uni, truth);
          EXPECT_EQ(bi, truth) << "s=" << s << " t=" << t << " k=" << k;
        } else {
          EXPECT_EQ(uni, kUnreachable);
          EXPECT_EQ(bi, kUnreachable) << "s=" << s << " t=" << t << " k=" << k;
        }
      }
    }
  }
}

TEST(BfsTest, BallMatchesReference) {
  Rng rng(33);
  const Graph g = WattsStrogatz(80, 2, 0.2, rng);
  BoundedBfs bfs(g);
  const auto ref = AllPairs(g);
  for (VertexId s = 0; s < g.num_vertices(); s += 7) {
    for (const HopDistance k : {1, 2, 3}) {
      const auto ball = bfs.Ball(s, k);
      EXPECT_TRUE(std::is_sorted(ball.begin(), ball.end()));
      std::vector<VertexId> expect;
      for (VertexId t = 0; t < g.num_vertices(); ++t) {
        if (t != s && ref[s][t] <= k) expect.push_back(t);
      }
      EXPECT_EQ(ball, expect) << "s=" << s << " k=" << k;
    }
  }
}

TEST(BfsTest, LevelsPartitionTheBall) {
  Rng rng(35);
  const Graph g = BarabasiAlbert(100, 3, rng);
  BoundedBfs bfs(g);
  const auto ref = AllPairs(g);
  const VertexId s = 17;
  const auto levels = bfs.Levels(s, 4);
  for (size_t i = 0; i < levels.size(); ++i) {
    for (const VertexId t : levels[i]) {
      EXPECT_EQ(ref[s][t], i + 1);
    }
  }
  // Every vertex within 4 hops appears in exactly one level.
  size_t total = 0;
  for (const auto& l : levels) total += l.size();
  size_t expect = 0;
  for (VertexId t = 0; t < g.num_vertices(); ++t) {
    if (t != s && ref[s][t] <= 4) ++expect;
  }
  EXPECT_EQ(total, expect);
}

TEST(BfsTest, EccentricityOnKnownShapes) {
  const Graph path = PathGraph(10);
  BoundedBfs path_bfs(path);
  EXPECT_EQ(path_bfs.Eccentricity(0), 9);
  EXPECT_EQ(path_bfs.Eccentricity(5), 5);

  const Graph grid = GridGraph(3, 4);
  BoundedBfs grid_bfs(grid);
  EXPECT_EQ(grid_bfs.Eccentricity(0), 5);  // corner to opposite corner

  const Graph k5 = CompleteGraph(5);
  BoundedBfs k5_bfs(k5);
  EXPECT_EQ(k5_bfs.Eccentricity(2), 1);
}

TEST(BfsTest, EccentricityOfIsolatedVertexIsZero) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  const Graph g = b.Build();
  BoundedBfs bfs(g);
  EXPECT_EQ(bfs.Eccentricity(2), 0);
}

TEST(BfsTest, DistancesFromMatchesReference) {
  Rng rng(37);
  const Graph g = ErdosRenyi(70, 0.05, rng);
  const auto ref = AllPairs(g);
  for (VertexId s = 0; s < g.num_vertices(); s += 11) {
    const auto dist = DistancesFrom(g, s);
    for (VertexId t = 0; t < g.num_vertices(); ++t) {
      if (ref[s][t] >= kInf) {
        EXPECT_EQ(dist[t], kUnreachable);
      } else {
        EXPECT_EQ(dist[t], ref[s][t]);
      }
    }
  }
}

TEST(BfsTest, HopDistanceBetweenConvenience) {
  const Graph g = CycleGraph(8);
  EXPECT_EQ(HopDistanceBetween(g, 0, 4), 4);
  EXPECT_EQ(HopDistanceBetween(g, 1, 7), 2);
}

TEST(BfsTest, EpochReuseDoesNotLeakMarks) {
  // Many searches on the same engine must stay independent.
  const Graph g = PathGraph(50);
  BoundedBfs bfs(g);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(bfs.Distance(0, 5, 10), 5);
    EXPECT_EQ(bfs.DistanceBidirectional(10, 20, 10), 10);
  }
}

}  // namespace
}  // namespace ktg
