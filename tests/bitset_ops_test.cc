// Copyright (c) 2026 The ktg Authors.
// Kernel equivalence fuzz: every dispatch tier (AVX2, AVX-512, NEON) must
// be bit-exact against the scalar bodies on random word arrays of every
// alignment-relevant length (0, sub-vector tails, exact multiples of the
// 4- and 8-word strides), including the aliased dst==a form the engines
// use, plus Bitset container edge cases.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/bitset_ops.h"
#include "util/rng.h"

namespace ktg {
namespace {

std::vector<uint64_t> RandomWords(Rng& rng, size_t n, int mode) {
  std::vector<uint64_t> out(n);
  for (auto& w : out) {
    switch (mode % 4) {
      case 0:  // dense random
        w = rng.Next();
        break;
      case 1:  // sparse
        w = uint64_t{1} << (rng.Next() & 63);
        break;
      case 2:  // all-ones
        w = ~uint64_t{0};
        break;
      default:  // empty
        w = 0;
    }
  }
  return out;
}

// Lengths crossing every tail case of the 4-word AVX2 stride AND the
// 8-word AVX-512 stride (tails of 0..7 words past a full vector).
const size_t kLengths[] = {0,  1,  2,  3,  4,  5,  7,  8,  9,   11, 13,
                           15, 16, 17, 23, 24, 25, 31, 33, 64,  65, 129};

TEST(BitsetOpsTest, ScalarMatchesDispatchedOnRandomInputs) {
  Rng rng(0xB17);
  for (const size_t n : kLengths) {
    for (int mode = 0; mode < 8; ++mode) {
      const auto a = RandomWords(rng, n, mode);
      const auto b = RandomWords(rng, n, mode + 1);

      std::vector<uint64_t> want(n), got(n);
      bitset_scalar::AndNot(want.data(), a.data(), b.data(), n);
      BitAndNot(got.data(), a.data(), b.data(), n);
      EXPECT_EQ(got, want) << "AndNot n=" << n << " mode=" << mode;

      bitset_scalar::And(want.data(), a.data(), b.data(), n);
      BitAnd(got.data(), a.data(), b.data(), n);
      EXPECT_EQ(got, want) << "And n=" << n;

      bitset_scalar::Or(want.data(), a.data(), b.data(), n);
      BitOr(got.data(), a.data(), b.data(), n);
      EXPECT_EQ(got, want) << "Or n=" << n;

      EXPECT_EQ(BitPopcount(a.data(), n),
                bitset_scalar::Popcount(a.data(), n))
          << "Popcount n=" << n;
      EXPECT_EQ(BitAndPopcount(a.data(), b.data(), n),
                bitset_scalar::AndPopcount(a.data(), b.data(), n))
          << "AndPopcount n=" << n;
      EXPECT_EQ(BitAndNotPopcount(a.data(), b.data(), n),
                bitset_scalar::AndNotPopcount(a.data(), b.data(), n))
          << "AndNotPopcount n=" << n;
      EXPECT_EQ(BitIntersects(a.data(), b.data(), n),
                bitset_scalar::Intersects(a.data(), b.data(), n))
          << "Intersects n=" << n;
    }
  }
}

#if KTG_BITSET_AVX2_COMPILED
TEST(BitsetOpsTest, Avx2MatchesScalarDirectly) {
  if (!Avx2Available()) GTEST_SKIP() << "CPU lacks AVX2";
  Rng rng(0xB18);
  for (const size_t n : kLengths) {
    for (int mode = 0; mode < 8; ++mode) {
      const auto a = RandomWords(rng, n, mode);
      const auto b = RandomWords(rng, n, mode + 2);

      std::vector<uint64_t> want(n), got(n);
      bitset_scalar::AndNot(want.data(), a.data(), b.data(), n);
      bitset_avx2::AndNot(got.data(), a.data(), b.data(), n);
      EXPECT_EQ(got, want) << "AndNot n=" << n << " mode=" << mode;

      bitset_scalar::And(want.data(), a.data(), b.data(), n);
      bitset_avx2::And(got.data(), a.data(), b.data(), n);
      EXPECT_EQ(got, want) << "And n=" << n;

      bitset_scalar::Or(want.data(), a.data(), b.data(), n);
      bitset_avx2::Or(got.data(), a.data(), b.data(), n);
      EXPECT_EQ(got, want) << "Or n=" << n;

      EXPECT_EQ(bitset_avx2::Popcount(a.data(), n),
                bitset_scalar::Popcount(a.data(), n));
      EXPECT_EQ(bitset_avx2::AndPopcount(a.data(), b.data(), n),
                bitset_scalar::AndPopcount(a.data(), b.data(), n));
      EXPECT_EQ(bitset_avx2::AndNotPopcount(a.data(), b.data(), n),
                bitset_scalar::AndNotPopcount(a.data(), b.data(), n));
      EXPECT_EQ(bitset_avx2::Intersects(a.data(), b.data(), n),
                bitset_scalar::Intersects(a.data(), b.data(), n));
    }
  }
}

TEST(BitsetOpsTest, Avx2AliasSafeWhenDstIsA) {
  if (!Avx2Available()) GTEST_SKIP() << "CPU lacks AVX2";
  Rng rng(0xB19);
  for (const size_t n : kLengths) {
    const auto orig_a = RandomWords(rng, n, 0);
    const auto b = RandomWords(rng, n, 1);
    std::vector<uint64_t> want(n);
    bitset_scalar::AndNot(want.data(), orig_a.data(), b.data(), n);
    // In-place: the engine's AndNotAssign aliases dst == a.
    auto a = orig_a;
    bitset_avx2::AndNot(a.data(), a.data(), b.data(), n);
    EXPECT_EQ(a, want) << "n=" << n;
  }
}
#endif  // KTG_BITSET_AVX2_COMPILED

#if KTG_BITSET_AVX512_COMPILED
TEST(BitsetOpsTest, Avx512MatchesScalarDirectly) {
  if (!Avx512Available()) GTEST_SKIP() << "CPU lacks AVX-512F+VPOPCNTDQ";
  Rng rng(0xB20);
  for (const size_t n : kLengths) {
    for (int mode = 0; mode < 8; ++mode) {
      const auto a = RandomWords(rng, n, mode);
      const auto b = RandomWords(rng, n, mode + 2);

      std::vector<uint64_t> want(n), got(n);
      bitset_scalar::AndNot(want.data(), a.data(), b.data(), n);
      bitset_avx512::AndNot(got.data(), a.data(), b.data(), n);
      EXPECT_EQ(got, want) << "AndNot n=" << n << " mode=" << mode;

      bitset_scalar::And(want.data(), a.data(), b.data(), n);
      bitset_avx512::And(got.data(), a.data(), b.data(), n);
      EXPECT_EQ(got, want) << "And n=" << n;

      bitset_scalar::Or(want.data(), a.data(), b.data(), n);
      bitset_avx512::Or(got.data(), a.data(), b.data(), n);
      EXPECT_EQ(got, want) << "Or n=" << n;

      EXPECT_EQ(bitset_avx512::Popcount(a.data(), n),
                bitset_scalar::Popcount(a.data(), n))
          << "Popcount n=" << n;
      EXPECT_EQ(bitset_avx512::AndPopcount(a.data(), b.data(), n),
                bitset_scalar::AndPopcount(a.data(), b.data(), n))
          << "AndPopcount n=" << n;
      EXPECT_EQ(bitset_avx512::AndNotPopcount(a.data(), b.data(), n),
                bitset_scalar::AndNotPopcount(a.data(), b.data(), n))
          << "AndNotPopcount n=" << n;
      EXPECT_EQ(bitset_avx512::Intersects(a.data(), b.data(), n),
                bitset_scalar::Intersects(a.data(), b.data(), n))
          << "Intersects n=" << n;
    }
  }
}

TEST(BitsetOpsTest, Avx512AliasSafeWhenDstIsA) {
  if (!Avx512Available()) GTEST_SKIP() << "CPU lacks AVX-512F+VPOPCNTDQ";
  Rng rng(0xB21);
  for (const size_t n : kLengths) {
    const auto orig_a = RandomWords(rng, n, 0);
    const auto b = RandomWords(rng, n, 1);
    std::vector<uint64_t> want(n);
    bitset_scalar::AndNot(want.data(), orig_a.data(), b.data(), n);
    auto a = orig_a;
    bitset_avx512::AndNot(a.data(), a.data(), b.data(), n);
    EXPECT_EQ(a, want) << "n=" << n;
  }
}
#endif  // KTG_BITSET_AVX512_COMPILED

#if KTG_BITSET_NEON_COMPILED
TEST(BitsetOpsTest, NeonMatchesScalarDirectly) {
  Rng rng(0xB22);
  for (const size_t n : kLengths) {
    for (int mode = 0; mode < 8; ++mode) {
      const auto a = RandomWords(rng, n, mode);
      const auto b = RandomWords(rng, n, mode + 2);

      std::vector<uint64_t> want(n), got(n);
      bitset_scalar::AndNot(want.data(), a.data(), b.data(), n);
      bitset_neon::AndNot(got.data(), a.data(), b.data(), n);
      EXPECT_EQ(got, want) << "AndNot n=" << n << " mode=" << mode;

      bitset_scalar::And(want.data(), a.data(), b.data(), n);
      bitset_neon::And(got.data(), a.data(), b.data(), n);
      EXPECT_EQ(got, want) << "And n=" << n;

      bitset_scalar::Or(want.data(), a.data(), b.data(), n);
      bitset_neon::Or(got.data(), a.data(), b.data(), n);
      EXPECT_EQ(got, want) << "Or n=" << n;

      EXPECT_EQ(bitset_neon::Popcount(a.data(), n),
                bitset_scalar::Popcount(a.data(), n))
          << "Popcount n=" << n;
      EXPECT_EQ(bitset_neon::AndPopcount(a.data(), b.data(), n),
                bitset_scalar::AndPopcount(a.data(), b.data(), n))
          << "AndPopcount n=" << n;
      EXPECT_EQ(bitset_neon::AndNotPopcount(a.data(), b.data(), n),
                bitset_scalar::AndNotPopcount(a.data(), b.data(), n))
          << "AndNotPopcount n=" << n;
      EXPECT_EQ(bitset_neon::Intersects(a.data(), b.data(), n),
                bitset_scalar::Intersects(a.data(), b.data(), n))
          << "Intersects n=" << n;
    }
  }
}

TEST(BitsetOpsTest, NeonAliasSafeWhenDstIsA) {
  Rng rng(0xB23);
  for (const size_t n : kLengths) {
    const auto orig_a = RandomWords(rng, n, 0);
    const auto b = RandomWords(rng, n, 1);
    std::vector<uint64_t> want(n);
    bitset_scalar::AndNot(want.data(), orig_a.data(), b.data(), n);
    auto a = orig_a;
    bitset_neon::AndNot(a.data(), a.data(), b.data(), n);
    EXPECT_EQ(a, want) << "n=" << n;
  }
}
#endif  // KTG_BITSET_NEON_COMPILED

TEST(BitsetOpsTest, DispatchReportsConsistentState) {
  // Whatever tier was resolved, the name and the flags must agree, the
  // priority order avx512 > avx2 > neon > scalar must hold, and the tiers
  // must nest (AVX-512 never runs with the AVX2 tier disabled).
  if (Avx512Active()) {
    EXPECT_STREQ(KernelDispatchName(), "avx512");
    EXPECT_TRUE(Avx512Available());
    EXPECT_TRUE(Avx2Active());  // nesting
  } else if (Avx2Active()) {
    EXPECT_STREQ(KernelDispatchName(), "avx2");
    EXPECT_TRUE(Avx2Available());
  } else if (NeonActive()) {
    EXPECT_STREQ(KernelDispatchName(), "neon");
    EXPECT_TRUE(NeonAvailable());
  } else {
    EXPECT_STREQ(KernelDispatchName(), "scalar");
  }
  // Availability never depends on environment overrides, so a disabled
  // tier still reports its hardware truthfully.
  if (NeonAvailable()) {
    EXPECT_FALSE(Avx2Available());  // no CPU has both ISAs
  }
  if (Avx512Available()) {
    EXPECT_TRUE(Avx2Available());  // every AVX-512 CPU has AVX2
  }
}

TEST(BitsetOpsTest, ForEachSetBitAscendingAndComplete) {
  Rng rng(0xB1A);
  for (const size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{9}}) {
    for (int mode = 0; mode < 4; ++mode) {
      const auto a = RandomWords(rng, n, mode);
      std::vector<uint32_t> seen;
      ForEachSetBit(a.data(), n, [&](uint32_t i) { seen.push_back(i); });
      EXPECT_EQ(seen.size(), bitset_scalar::Popcount(a.data(), n));
      for (size_t i = 1; i < seen.size(); ++i) EXPECT_LT(seen[i - 1], seen[i]);
      for (const uint32_t i : seen) {
        EXPECT_TRUE((a[i >> 6] >> (i & 63)) & 1);
      }
    }
  }
}

TEST(BitsetOpsTest, BitsetEdgeCases) {
  // Empty.
  Bitset empty(0);
  EXPECT_EQ(empty.Count(), 0u);
  empty.SetAll();
  EXPECT_EQ(empty.Count(), 0u);

  // Tail masking: SetAll on a non-multiple-of-64 size must not produce
  // ghost bits (Count and word-level equality both depend on it).
  for (const uint32_t bits : {1u, 63u, 64u, 65u, 127u, 130u}) {
    Bitset s(bits);
    s.SetAll();
    EXPECT_EQ(s.Count(), bits) << bits;
    Bitset manual(bits);
    for (uint32_t i = 0; i < bits; ++i) manual.Set(i);
    EXPECT_TRUE(s == manual) << bits;

    // All-ones AND-NOT all-ones = empty; OR restores.
    Bitset t = s;
    t.AndNotAssign(s);
    EXPECT_EQ(t.Count(), 0u);
    EXPECT_FALSE(t.Intersects(s) && bits == 0);
    t.OrAssign(s);
    EXPECT_TRUE(t == s);
  }

  // Set/Clear/Test round-trip across word boundaries.
  Bitset s(130);
  for (const uint32_t i : {0u, 63u, 64u, 127u, 128u, 129u}) {
    EXPECT_FALSE(s.Test(i));
    s.Set(i);
    EXPECT_TRUE(s.Test(i));
  }
  EXPECT_EQ(s.Count(), 6u);
  s.Clear(64);
  EXPECT_FALSE(s.Test(64));
  EXPECT_EQ(s.Count(), 5u);
}

}  // namespace
}  // namespace ktg
