// Copyright (c) 2026 The ktg Authors.
// The determinism contract of the parallel execution layer:
//   * index construction writes only per-vertex slots, so any thread count
//     must yield a byte-identical serialized index (NL, NLRNL) and an
//     answer-identical bitmap;
//   * the root-parallel engine must return the same top-N coverage
//     multiset as the serial engine (tie-break members may differ), and
//     num_threads = 1 must be bit-for-bit the serial engine.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/ktg_engine.h"
#include "datagen/presets.h"
#include "datagen/query_gen.h"
#include "index/checker_factory.h"
#include "index/khop_bitmap.h"
#include "index/nl_index.h"
#include "index/nlrnl_index.h"
#include "index/serialization.h"
#include "keywords/inverted_index.h"
#include "util/macros.h"
#include "util/rng.h"

namespace ktg {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

AttributedGraph PresetGraph(const char* preset, double scale) {
  auto spec = GetPreset(preset, scale);
  KTG_CHECK(spec.ok());
  return BuildDataset(*spec);
}

TEST(ParallelDeterminismTest, NlBuildIsThreadCountInvariant) {
  const AttributedGraph g = PresetGraph("gowalla", 0.05);
  NlIndexOptions serial_opts;
  serial_opts.num_threads = 1;
  const NlIndex serial(g.graph(), serial_opts);
  const std::string serial_path = TempPath("ktg_det_nl_serial.idx");
  ASSERT_TRUE(SaveNlIndex(serial, serial_path).ok());
  const std::string serial_bytes = ReadAll(serial_path);
  ASSERT_FALSE(serial_bytes.empty());

  for (const uint32_t threads : {2u, 4u, 0u}) {
    NlIndexOptions opts;
    opts.num_threads = threads;
    const NlIndex parallel(g.graph(), opts);
    const std::string path = TempPath("ktg_det_nl_parallel.idx");
    ASSERT_TRUE(SaveNlIndex(parallel, path).ok());
    EXPECT_EQ(ReadAll(path), serial_bytes) << "threads=" << threads;
    std::remove(path.c_str());
  }
  std::remove(serial_path.c_str());
}

TEST(ParallelDeterminismTest, NlrnlBuildIsThreadCountInvariant) {
  const AttributedGraph g = PresetGraph("brightkite", 0.05);
  NlrnlIndexOptions serial_opts;
  serial_opts.num_threads = 1;
  const NlrnlIndex serial(g.graph(), serial_opts);
  const std::string serial_path = TempPath("ktg_det_nlrnl_serial.idx");
  ASSERT_TRUE(SaveNlrnlIndex(serial, serial_path).ok());
  const std::string serial_bytes = ReadAll(serial_path);
  ASSERT_FALSE(serial_bytes.empty());

  for (const uint32_t threads : {2u, 4u, 0u}) {
    NlrnlIndexOptions opts;
    opts.num_threads = threads;
    const NlrnlIndex parallel(g.graph(), opts);
    const std::string path = TempPath("ktg_det_nlrnl_parallel.idx");
    ASSERT_TRUE(SaveNlrnlIndex(parallel, path).ok());
    EXPECT_EQ(ReadAll(path), serial_bytes) << "threads=" << threads;
    std::remove(path.c_str());
  }
  std::remove(serial_path.c_str());
}

TEST(ParallelDeterminismTest, BitmapBuildIsThreadCountInvariant) {
  const AttributedGraph g = PresetGraph("gowalla", 0.05);
  constexpr HopDistance kK = 2;
  KHopBitmapOptions serial_opts;
  serial_opts.num_threads = 1;
  KHopBitmapChecker serial(g.graph(), kK, serial_opts);

  KHopBitmapOptions parallel_opts;
  parallel_opts.num_threads = 4;
  KHopBitmapChecker parallel(g.graph(), kK, parallel_opts);

  EXPECT_EQ(serial.MemoryBytes(), parallel.MemoryBytes());
  Rng rng(0xD37);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto u = static_cast<VertexId>(rng.Below(g.num_vertices()));
    const auto v = static_cast<VertexId>(rng.Below(g.num_vertices()));
    ASSERT_EQ(serial.IsFartherThan(u, v, kK), parallel.IsFartherThan(u, v, kK))
        << "u=" << u << " v=" << v;
  }
}

std::vector<int> CoverageCounts(const std::vector<Group>& groups) {
  std::vector<int> out;
  out.reserve(groups.size());
  for (const auto& g : groups) out.push_back(g.covered());
  return out;
}

TEST(ParallelDeterminismTest, ParallelSearchMatchesSerialOnPresets) {
  for (const char* preset : {"gowalla", "dblp"}) {
    const AttributedGraph g = PresetGraph(preset, 0.05);
    const InvertedIndex idx(g);

    WorkloadOptions wopts;
    wopts.num_queries = 6;
    wopts.group_size = 3;
    wopts.tenuity = 2;
    wopts.keyword_count = 5;
    wopts.top_n = 4;
    Rng rng(0xBEEF);
    const auto queries = GenerateWorkload(g, wopts, rng);
    ASSERT_FALSE(queries.empty());

    auto checker = MakeChecker(CheckerKind::kNlrnl, g.graph(), wopts.tenuity);
    ASSERT_TRUE(checker->concurrent_read_safe());

    for (const auto& query : queries) {
      EngineOptions serial_opts;
      const auto serial = RunKtg(g, idx, *checker, query, serial_opts);
      ASSERT_TRUE(serial.ok());
      const auto expected = CoverageCounts(serial->groups);

      for (const uint32_t threads : {2u, 4u}) {
        EngineOptions opts;
        opts.num_threads = threads;
        const auto parallel = RunKtg(g, idx, *checker, query, opts);
        ASSERT_TRUE(parallel.ok());
        EXPECT_EQ(CoverageCounts(parallel->groups), expected)
            << preset << " threads=" << threads;
        // The parallel engine explores the same tree, so the group count
        // and pruning opportunities agree; members may differ on ties.
        EXPECT_EQ(parallel->groups.size(), serial->groups.size());
      }
    }
  }
}

TEST(ParallelDeterminismTest, SingleThreadOptionIsBitForBitSerial) {
  const AttributedGraph g = PresetGraph("gowalla", 0.05);
  const InvertedIndex idx(g);

  WorkloadOptions wopts;
  wopts.num_queries = 4;
  wopts.group_size = 3;
  wopts.tenuity = 2;
  wopts.keyword_count = 5;
  wopts.top_n = 3;
  Rng rng(0xABBA);
  const auto queries = GenerateWorkload(g, wopts, rng);

  auto checker = MakeChecker(CheckerKind::kNlrnl, g.graph(), wopts.tenuity);
  for (const auto& query : queries) {
    EngineOptions opts1;
    opts1.num_threads = 1;
    const auto a = RunKtg(g, idx, *checker, query, opts1);
    const auto b = RunKtg(g, idx, *checker, query, opts1);
    ASSERT_TRUE(a.ok() && b.ok());
    // Identical groups including members and order: the serial engine is
    // deterministic, and num_threads = 1 must be exactly that engine.
    EXPECT_EQ(a->groups, b->groups);
    EXPECT_EQ(a->stats.nodes_expanded, b->stats.nodes_expanded);
    EXPECT_EQ(a->stats.keyword_prunes, b->stats.keyword_prunes);
  }
}

TEST(ParallelDeterminismTest, UnsafeCheckerFallsBackToSerial) {
  const AttributedGraph g = PresetGraph("gowalla", 0.05);
  const InvertedIndex idx(g);

  WorkloadOptions wopts;
  wopts.num_queries = 2;
  wopts.group_size = 3;
  wopts.tenuity = 2;
  wopts.keyword_count = 5;
  wopts.top_n = 3;
  Rng rng(0xFACE);
  const auto queries = GenerateWorkload(g, wopts, rng);

  // The memoizing NL index mutates on reads — not concurrent-read-safe, so
  // num_threads > 1 must silently run the serial engine and still be exact.
  auto memoizing = MakeChecker(CheckerKind::kNl, g.graph(), wopts.tenuity);
  ASSERT_FALSE(memoizing->concurrent_read_safe());
  auto reference = MakeChecker(CheckerKind::kNlrnl, g.graph(), wopts.tenuity);

  for (const auto& query : queries) {
    EngineOptions opts;
    opts.num_threads = 4;
    const auto got = RunKtg(g, idx, *memoizing, query, opts);
    const auto want = RunKtg(g, idx, *reference, query, EngineOptions{});
    ASSERT_TRUE(got.ok() && want.ok());
    EXPECT_EQ(got->groups, want->groups);
  }
}

}  // namespace
}  // namespace ktg
