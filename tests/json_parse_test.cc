// Copyright (c) 2026 The ktg Authors.
// util/json_parse: the strict RFC 8259 parser the server front end and the
// schema validators are built on, plus DumpJson round-trips.

#include <string>

#include <gtest/gtest.h>

#include "util/json_parse.h"

namespace ktg {
namespace {

TEST(JsonParseTest, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->AsBool());
  EXPECT_FALSE(ParseJson("false")->AsBool());
  EXPECT_DOUBLE_EQ(ParseJson("-12.5e2")->AsDouble(), -1250.0);
  EXPECT_EQ(ParseJson(R"("hi")")->AsString(), "hi");
}

TEST(JsonParseTest, ParsesNestedStructures) {
  const auto doc = ParseJson(
      R"({"a":[1,2,3],"b":{"c":true,"d":"x"},"e":null})");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->Find("a")->AsArray().size(), 3u);
  EXPECT_TRUE(doc->Find("b")->Find("c")->AsBool());
  EXPECT_EQ(doc->Find("b")->Find("d")->AsString(), "x");
  EXPECT_TRUE(doc->Find("e")->is_null());
  EXPECT_EQ(doc->Find("missing"), nullptr);
}

TEST(JsonParseTest, DecodesStringEscapes) {
  const auto doc = ParseJson(R"("a\"b\\c\n\tA")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->AsString(), "a\"b\\c\n\tA");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1,}").ok());   // trailing comma
  EXPECT_FALSE(ParseJson("[1 2]").ok());        // missing comma
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());    // missing colon
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
  EXPECT_FALSE(ParseJson("01").ok());           // leading zero
  EXPECT_FALSE(ParseJson("1 extra").ok());      // trailing garbage
  EXPECT_FALSE(ParseJson("// comment\n1").ok());
}

TEST(JsonParseTest, DepthBoundStopsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  for (int i = 0; i < 100; ++i) deep += "]";
  EXPECT_FALSE(ParseJson(deep, /*max_depth=*/64).ok());
  EXPECT_TRUE(ParseJson(deep, /*max_depth=*/128).ok());
}

TEST(JsonParseTest, ErrorsCarryByteOffsets) {
  const auto doc = ParseJson("{\"a\": nope}");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("offset"), std::string::npos);
}

TEST(JsonParseTest, TypedGettersDistinguishAbsentFromMistyped) {
  const auto doc = ParseJson(R"({"n":3,"s":"x","b":true})");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->GetInt("n", 0).value(), 3);
  EXPECT_EQ(doc->GetInt("absent", 7).value(), 7);
  EXPECT_FALSE(doc->GetInt("s", 0).ok());  // present but mistyped
  EXPECT_EQ(doc->GetString("s", "").value(), "x");
  EXPECT_FALSE(doc->GetString("n", "").ok());
  EXPECT_TRUE(doc->GetBool("b", false).value());
  EXPECT_FALSE(doc->GetBool("n", false).ok());
}

TEST(JsonParseTest, DumpJsonRoundTripsParsedDocuments) {
  const std::string text =
      R"({"arr":[1,true,null,"s"],"num":2.5,"obj":{"k":"v"}})";
  const auto doc = ParseJson(text);
  ASSERT_TRUE(doc.ok());
  const std::string dumped = DumpJson(*doc);
  // parse ∘ dump is idempotent even when dump ∘ parse is not byte-stable.
  const auto redoc = ParseJson(dumped);
  ASSERT_TRUE(redoc.ok()) << redoc.status().ToString();
  EXPECT_EQ(DumpJson(*redoc), dumped);
  EXPECT_EQ(redoc->Find("arr")->AsArray().size(), 4u);
  EXPECT_DOUBLE_EQ(redoc->Find("num")->AsDouble(), 2.5);
}

TEST(JsonParseTest, DumpJsonEscapesStrings) {
  const std::string dumped =
      DumpJson(JsonValue::MakeString("a\"b\\c\n\x01"));
  const auto redoc = ParseJson(dumped);
  ASSERT_TRUE(redoc.ok()) << dumped;
  EXPECT_EQ(redoc->AsString(), "a\"b\\c\n\x01");
}

}  // namespace
}  // namespace ktg
