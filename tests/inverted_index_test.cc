// Copyright (c) 2026 The ktg Authors.
// Inverted keyword index tests.

#include <gtest/gtest.h>

#include "core/paper_example.h"
#include "datagen/keyword_assigner.h"
#include "datagen/generators.h"
#include "keywords/inverted_index.h"

namespace ktg {
namespace {

AttributedGraph SmallGraph() {
  AttributedGraphBuilder b;
  b.mutable_topology().AddEdge(0, 1);
  b.mutable_topology().AddEdge(1, 2);
  b.mutable_topology().EnsureVertices(4);
  b.AddKeywords(0, {"db", "ml"});
  b.AddKeywords(1, {"db"});
  b.AddKeywords(2, {"ml", "ir"});
  // vertex 3 has no keywords.
  return b.Build();
}

TEST(InvertedIndexTest, PostingsAreSortedAndComplete) {
  const AttributedGraph g = SmallGraph();
  const InvertedIndex idx(g);
  const KeywordId db = g.vocabulary().Find("db");
  const KeywordId ml = g.vocabulary().Find("ml");
  const KeywordId ir = g.vocabulary().Find("ir");

  const auto p_db = idx.Postings(db);
  EXPECT_EQ(std::vector<VertexId>(p_db.begin(), p_db.end()),
            (std::vector<VertexId>{0, 1}));
  EXPECT_EQ(idx.Frequency(ml), 2u);
  EXPECT_EQ(idx.Frequency(ir), 1u);
}

TEST(InvertedIndexTest, UnknownKeywordHasEmptyPostings) {
  const AttributedGraph g = SmallGraph();
  const InvertedIndex idx(g);
  EXPECT_TRUE(idx.Postings(999).empty());
  EXPECT_TRUE(idx.Postings(kInvalidKeyword).empty());
}

TEST(InvertedIndexTest, CandidatesCarryMasks) {
  const AttributedGraph g = SmallGraph();
  const InvertedIndex idx(g);
  const std::vector<KeywordId> query = {g.vocabulary().Find("db"),
                                        g.vocabulary().Find("ir")};
  const auto cands = idx.Candidates(query);
  ASSERT_EQ(cands.size(), 3u);
  EXPECT_EQ(cands[0].vertex, 0u);
  EXPECT_EQ(cands[0].mask, 0b01u);  // db only
  EXPECT_EQ(cands[1].vertex, 1u);
  EXPECT_EQ(cands[1].mask, 0b01u);
  EXPECT_EQ(cands[2].vertex, 2u);
  EXPECT_EQ(cands[2].mask, 0b10u);  // ir only
}

TEST(InvertedIndexTest, CandidatesWithInvalidKeyword) {
  const AttributedGraph g = SmallGraph();
  const InvertedIndex idx(g);
  const std::vector<KeywordId> query = {kInvalidKeyword,
                                        g.vocabulary().Find("ml")};
  const auto cands = idx.Candidates(query);
  ASSERT_EQ(cands.size(), 2u);
  EXPECT_EQ(cands[0].vertex, 0u);
  EXPECT_EQ(cands[0].mask, 0b10u);
  EXPECT_EQ(cands[1].vertex, 2u);
}

TEST(InvertedIndexTest, CandidatesMatchScanOnRandomData) {
  Rng rng(51);
  KeywordModel model;
  model.vocabulary_size = 40;
  const AttributedGraph g =
      AssignKeywords(BarabasiAlbert(300, 3, rng), model, rng);
  const InvertedIndex idx(g);

  std::vector<KeywordId> query;
  for (KeywordId kw = 0; kw < 8; ++kw) query.push_back(kw * 3);

  const auto cands = idx.Candidates(query);
  // Reference: brute-force scan of every vertex.
  size_t expected = 0;
  size_t pos = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const CoverMask mask = CoverMaskOf(g, v, query);
    if (mask == 0) continue;
    ++expected;
    ASSERT_LT(pos, cands.size());
    EXPECT_EQ(cands[pos].vertex, v);
    EXPECT_EQ(cands[pos].mask, mask);
    ++pos;
  }
  EXPECT_EQ(cands.size(), expected);
}

TEST(InvertedIndexTest, CoverMaskOfPaperExample) {
  const AttributedGraph g = PaperExampleGraph();
  const KtgQuery q = PaperExampleQuery(g);
  // u0 covers {SN, DQ, GD} = bits 0, 2, 4 of W_Q = {SN, QP, DQ, GQ, GD}.
  EXPECT_EQ(CoverMaskOf(g, 0, q.keywords), 0b10101u);
  // u10 covers {SN, QP, DQ} = bits 0, 1, 2.
  EXPECT_EQ(CoverMaskOf(g, 10, q.keywords), 0b00111u);
  // u8 covers nothing.
  EXPECT_EQ(CoverMaskOf(g, 8, q.keywords), 0u);
}

}  // namespace
}  // namespace ktg
