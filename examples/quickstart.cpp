// Copyright (c) 2026 The ktg Authors.
// Quickstart: build a small attributed social network, run one KTG query
// and one DKTG query, print the results.
//
//   $ ./build/examples/quickstart
//
// This walks the whole public API surface in ~80 lines: the attributed
// graph builder, the inverted keyword index, a distance checker, the exact
// KTG engine and the diversified greedy.

#include <cstdio>

#include "core/dktg_greedy.h"
#include "core/ktg_engine.h"
#include "index/nlrnl_index.h"
#include "keywords/inverted_index.h"

using namespace ktg;

int main() {
  // 1. Build an attributed social network: 8 users, friendships, topics.
  AttributedGraphBuilder builder;
  GraphBuilder& topo = builder.mutable_topology();
  topo.AddEdge(0, 1);
  topo.AddEdge(0, 2);
  topo.AddEdge(1, 2);
  topo.AddEdge(2, 3);
  topo.AddEdge(4, 5);
  topo.AddEdge(5, 6);
  topo.EnsureVertices(8);

  builder.AddKeywords(0, {"databases", "graphs"});
  builder.AddKeywords(1, {"ml"});
  builder.AddKeywords(2, {"graphs", "systems"});
  builder.AddKeywords(3, {"databases"});
  builder.AddKeywords(4, {"systems", "ml"});
  builder.AddKeywords(5, {"graphs"});
  builder.AddKeywords(6, {"databases", "ml"});
  builder.AddKeywords(7, {"systems"});
  const AttributedGraph graph = builder.Build();

  // 2. Index the keywords and pick a distance checker (NLRNL = the paper's
  //    best; BfsChecker works too and needs no build).
  const InvertedIndex index(graph);
  NlrnlIndex checker(graph.graph());

  // 3. A KTG query: 3 users jointly covering {databases, graphs, systems,
  //    ml}, pairwise more than 1 hop apart, top-2 groups.
  const std::string terms[] = {"databases", "graphs", "systems", "ml"};
  const KtgQuery query = MakeQuery(graph, terms, /*group_size=*/3,
                                   /*tenuity=*/1, /*top_n=*/2);

  const auto result = RunKtg(graph, index, checker, query);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("KTG top-%u groups (coverage = covered/|W_Q|):\n", query.top_n);
  for (const auto& group : result->groups) {
    std::printf("  coverage %d/%u, members:", group.covered(),
                result->query_keyword_count);
    for (const VertexId v : group.members) std::printf(" u%u", v);
    std::printf("\n");
  }
  std::printf("search stats: %llu BB nodes, %llu distance checks, %.3f ms\n",
              static_cast<unsigned long long>(result->stats.nodes_expanded),
              static_cast<unsigned long long>(result->stats.distance_checks),
              result->stats.elapsed_ms);

  // 4. The diversified variant: same query, pairwise-disjoint groups.
  const auto diverse = RunDktgGreedy(graph, index, checker, query);
  if (diverse.ok()) {
    std::printf("\nDKTG-Greedy: %zu groups, diversity %.2f, score %.2f\n",
                diverse->groups.size(), diverse->diversity, diverse->score);
  }
  return 0;
}
