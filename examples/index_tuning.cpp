// Copyright (c) 2026 The ktg Authors.
// Index selection guide — when to pick BFS, NL, NLRNL or the bitmap.
//
//   $ ./build/examples/index_tuning [preset] [scale]
//
// Builds every DistanceChecker over one dataset and reports build time,
// memory and the average cost of a k-line check at several k, then runs
// the same KTG workload under each. This is the decision the paper's
// Section V + Figure 9 inform; the bitmap is this library's extension for
// deployments with a pinned k.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/ktg_engine.h"
#include "datagen/presets.h"
#include "datagen/query_gen.h"
#include "index/checker_factory.h"
#include "keywords/inverted_index.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace ktg;

int main(int argc, char** argv) {
  const std::string preset = argc > 1 ? argv[1] : "brightkite";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.2;

  const auto spec = GetPreset(preset, scale);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  const AttributedGraph graph = BuildDataset(*spec);
  const InvertedIndex index(graph);
  std::printf("dataset %s: n=%u m=%llu\n\n", preset.c_str(),
              graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  constexpr HopDistance kTenuity = 2;
  struct Entry {
    CheckerKind kind;
    std::unique_ptr<DistanceChecker> checker;
    double build_s;
  };
  std::vector<Entry> entries;
  for (const auto kind : {CheckerKind::kBfs, CheckerKind::kNl,
                          CheckerKind::kNlrnl, CheckerKind::kKHopBitmap}) {
    Stopwatch watch;
    auto checker = MakeChecker(kind, graph.graph(), kTenuity);
    entries.push_back({kind, std::move(checker), watch.ElapsedSeconds()});
  }

  std::printf("%-14s %12s %12s %16s\n", "checker", "build s", "MB",
              "ns/check (k=2)");
  Rng rng(0xCAFE);
  std::vector<std::pair<VertexId, VertexId>> pairs;
  for (int i = 0; i < 20000; ++i) {
    pairs.emplace_back(static_cast<VertexId>(rng.Below(graph.num_vertices())),
                       static_cast<VertexId>(rng.Below(graph.num_vertices())));
  }
  for (auto& e : entries) {
    Stopwatch watch;
    uint64_t farther = 0;
    for (const auto& [u, v] : pairs) {
      farther += e.checker->IsFartherThan(u, v, kTenuity);
    }
    const double ns = watch.ElapsedSeconds() * 1e9 / pairs.size();
    std::printf("%-14s %12.3f %12.2f %16.1f   (%llu farther)\n",
                e.checker->name().c_str(), e.build_s,
                e.checker->MemoryBytes() / (1024.0 * 1024.0), ns,
                static_cast<unsigned long long>(farther));
  }

  // End-to-end: the same KTG workload under each checker.
  WorkloadOptions wopts;
  wopts.num_queries = 10;
  wopts.tenuity = kTenuity;
  Rng qrng(0xF1E1D);
  const auto workload = GenerateWorkload(graph, wopts, qrng);
  std::printf("\n%-14s %16s\n", "checker", "KTG ms/query");
  for (auto& e : entries) {
    double total_ms = 0;
    for (const auto& query : workload) {
      const auto r = RunKtg(graph, index, *e.checker, query);
      if (!r.ok()) {
        std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
        return 1;
      }
      total_ms += r->stats.elapsed_ms;
    }
    std::printf("%-14s %16.3f\n", e.checker->name().c_str(),
                total_ms / workload.size());
  }
  std::printf(
      "\nguidance: BFS needs no build (one-off queries); NLRNL is the "
      "paper's\nbest general index; the bitmap wins when k is pinned and "
      "n is moderate.\n");
  return 0;
}
