// Copyright (c) 2026 The ktg Authors.
// Dynamic social networks — incremental index maintenance (Section V.B's
// update discussion).
//
//   $ ./build/examples/dynamic_network
//
// Social graphs change: friendships form and dissolve. Rebuilding NLRNL
// from scratch costs one full BFS per vertex; the incremental update only
// rebuilds vertices whose shortest-path structure the edge can affect.
// This example streams edge insertions/deletions into an NLRNL index,
// re-answers the same KTG query after each change, and reports how few
// vertices each update touched.

#include <cstdio>

#include "core/ktg_engine.h"
#include "datagen/presets.h"
#include "datagen/query_gen.h"
#include "index/nlrnl_index.h"
#include "keywords/inverted_index.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace ktg;

int main() {
  const auto spec = GetPreset("brightkite", /*scale=*/0.08);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  const AttributedGraph graph = BuildDataset(*spec);
  const InvertedIndex index(graph);
  std::printf("network: %u users, %llu friendships\n", graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  Stopwatch build_watch;
  NlrnlIndex checker(graph.graph());
  std::printf("NLRNL full build: %.3f s\n\n", build_watch.ElapsedSeconds());

  // One standing query, re-evaluated as the network evolves.
  WorkloadOptions wopts;
  wopts.num_queries = 1;
  wopts.group_size = 3;
  wopts.tenuity = 2;
  wopts.top_n = 2;
  wopts.frequency_banded = true;
  Rng qrng(0xD11A);
  const KtgQuery query = GenerateWorkload(graph, wopts, qrng).front();

  Rng rng(0xED6E);
  const uint32_t n = graph.num_vertices();
  for (int step = 1; step <= 8; ++step) {
    // Alternate random insertions and deletions.
    const char* what;
    VertexId a, b;
    if (step % 2 == 1) {
      a = static_cast<VertexId>(rng.Below(n));
      b = static_cast<VertexId>(rng.Below(n));
      Stopwatch w;
      checker.InsertEdge(a, b);
      std::printf("step %d: insert {%u, %u}: rebuilt %llu/%u vertices in "
                  "%.3f s\n",
                  step, a, b,
                  static_cast<unsigned long long>(
                      checker.last_update_rebuilds()),
                  n, w.ElapsedSeconds());
      what = "insert";
    } else {
      const auto edges = checker.graph().EdgeList();
      const auto& edge = edges[rng.Below(edges.size())];
      a = edge.first;
      b = edge.second;
      Stopwatch w;
      checker.RemoveEdge(a, b);
      std::printf("step %d: remove {%u, %u}: rebuilt %llu/%u vertices in "
                  "%.3f s\n",
                  step, a, b,
                  static_cast<unsigned long long>(
                      checker.last_update_rebuilds()),
                  n, w.ElapsedSeconds());
      what = "remove";
    }
    (void)what;

    // Queries keep answering against the updated topology. (The engine's
    // keyword side is unchanged; only social distances moved.)
    const auto result = RunKtg(graph, index, checker, query);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    if (result->groups.empty()) {
      std::printf("         query: no feasible group under the new topology\n");
    } else {
      std::printf("         query: best coverage %d/%u, %.3f ms\n",
                  result->groups.front().covered(),
                  result->query_keyword_count, result->stats.elapsed_ms);
    }
  }
  std::printf(
      "\nNote: each update touched a small fraction of vertices versus the "
      "full rebuild above (AffectedBy* criteria, see index/affected.h).\n");
  return 0;
}
