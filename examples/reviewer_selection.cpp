// Copyright (c) 2026 The ktg Authors.
// Reviewer selection — the paper's motivating scenario (Example 1 /
// Figure 1).
//
//   $ ./build/examples/reviewer_selection
//
// Finds reviewer panels for a paper with keywords {SN, QP, DQ, GQ, GD} over
// the Figure-1 network: every panelist must cover at least one paper topic,
// panelists must not be socially close (no k-line), and the panel should
// jointly cover as many topics as possible. Also demonstrates the
// "authors" extension of Section IV: reviewers familiar with the authors
// are excluded.

#include <cstdio>

#include "core/ktg_engine.h"
#include "core/paper_example.h"
#include "core/tagq.h"
#include "graph/bfs.h"
#include "index/bfs_checker.h"
#include "keywords/inverted_index.h"

using namespace ktg;

namespace {

void PrintPanel(const AttributedGraph& graph, const KtgQuery& query,
                const Group& panel) {
  std::printf("  panel {");
  for (size_t i = 0; i < panel.members.size(); ++i) {
    std::printf("%su%u", i ? ", " : "", panel.members[i]);
  }
  std::printf("} jointly covers %d/%zu topics\n", panel.covered(),
              query.keywords.size());
  for (const VertexId r : panel.members) {
    std::printf("    u%-3u expertise:", r);
    for (const KeywordId kw : graph.Keywords(r)) {
      std::printf(" %s", graph.vocabulary().Term(kw).c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  const AttributedGraph graph = PaperExampleGraph();
  const InvertedIndex index(graph);
  BfsChecker checker(graph.graph());

  const KtgQuery query = PaperExampleQuery(graph);
  std::printf("paper topics: SN QP DQ GQ GD   (p=%u, k=%u, N=%u)\n\n",
              query.group_size, query.tenuity, query.top_n);

  const auto result = RunKtg(graph, index, checker, query);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("KTG-VKC-DEG panels:\n");
  for (const auto& panel : result->groups) PrintPanel(graph, query, panel);

  // Verify tenuity visibly: print the pairwise hop distances of the top
  // panel (all must exceed k = 1).
  if (!result->groups.empty()) {
    const auto& top = result->groups.front();
    BoundedBfs bfs(graph.graph());
    std::printf("\npairwise hop distances of the top panel:\n");
    for (size_t i = 0; i < top.members.size(); ++i) {
      for (size_t j = i + 1; j < top.members.size(); ++j) {
        std::printf("  dis(u%u, u%u) = %u\n", top.members[i], top.members[j],
                    bfs.Distance(top.members[i], top.members[j], 16));
      }
    }
  }

  // The Section-IV extension: u0 co-authored the paper, so everyone within
  // k hops of u0 is disqualified.
  KtgQuery with_authors = query;
  with_authors.query_vertices = {0};
  const auto without_friends = RunKtg(graph, index, checker, with_authors);
  if (without_friends.ok()) {
    std::printf("\nwith author u0 excluded (and u0's <=%u-hop circle):\n",
                query.tenuity);
    if (without_friends->groups.empty()) {
      std::printf("  no feasible panel remains\n");
    }
    for (const auto& panel : without_friends->groups) {
      PrintPanel(graph, with_authors, panel);
    }
  }

  // Contrast with the TAGQ baseline: average coverage tolerates reviewers
  // with zero relevant expertise.
  const auto tagq = RunTagq(graph, checker, query);
  if (tagq.ok() && !tagq->groups.empty()) {
    const auto& g = tagq->groups.front();
    std::printf("\nTAGQ baseline's best panel {");
    for (size_t i = 0; i < g.members.size(); ++i) {
      std::printf("%su%u", i ? ", " : "", g.members[i]);
    }
    std::printf("}: %u member(s) with zero covered topics\n",
                g.zero_coverage_members);
  }
  return 0;
}
