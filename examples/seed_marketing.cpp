// Copyright (c) 2026 The ktg Authors.
// Seed-user selection for social advertising — the paper's second
// motivating application.
//
//   $ ./build/examples/seed_marketing
//
// A campaign wants seed users who (a) jointly cover the product's keywords,
// (b) are mutual strangers (far apart in the social graph, so their
// influence cascades don't overlap), and (c) across campaign waves, are
// DIFFERENT people — which is exactly the DKTG problem. This example runs
// on the Gowalla-like synthetic dataset and compares the plain KTG top-N
// (heavily overlapping waves) with DKTG-Greedy (disjoint waves).

#include <cstdio>

#include "core/dktg_greedy.h"
#include "core/diversity.h"
#include "core/ktg_engine.h"
#include "datagen/presets.h"
#include "index/nlrnl_index.h"
#include "keywords/inverted_index.h"

using namespace ktg;

int main() {
  // A small synthetic location-based social network (see datagen/presets).
  const auto spec = GetPreset("gowalla", /*scale=*/0.15);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  const AttributedGraph graph = BuildDataset(*spec);
  const InvertedIndex index(graph);
  NlrnlIndex checker(graph.graph());
  std::printf("network: %u users, %llu friendships, %u interest tags\n\n",
              graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()),
              graph.num_keywords());

  // The product's keywords: the five most popular interest tags (ranks are
  // popularity order in the generator's vocabulary).
  KtgQuery campaign;
  for (KeywordId kw = 0; kw < 5; ++kw) campaign.keywords.push_back(kw);
  campaign.group_size = 4;  // 4 seed users per wave
  campaign.tenuity = 2;     // pairwise more than 2 hops apart
  campaign.top_n = 3;       // 3 campaign waves

  // Plain KTG: the top-3 seed groups by coverage.
  const auto ktg = RunKtg(graph, index, checker, campaign);
  if (!ktg.ok()) {
    std::fprintf(stderr, "%s\n", ktg.status().ToString().c_str());
    return 1;
  }
  std::printf("KTG top-%u waves (may share seed users):\n", campaign.top_n);
  for (const auto& wave : ktg->groups) {
    std::printf("  coverage %d/%zu, seeds:", wave.covered(),
                campaign.keywords.size());
    for (const VertexId v : wave.members) std::printf(" %u", v);
    std::printf("\n");
  }
  std::printf("  inter-wave diversity dL = %.3f\n",
              AverageDiversity(ktg->groups));

  // DKTG: waves must not reuse seed users.
  DktgOptions options;
  options.gamma = 0.5;
  const auto dktg = RunDktgGreedy(graph, index, checker, campaign, options);
  if (!dktg.ok()) {
    std::fprintf(stderr, "%s\n", dktg.status().ToString().c_str());
    return 1;
  }
  std::printf("\nDKTG-Greedy waves (pairwise disjoint):\n");
  for (const auto& wave : dktg->groups) {
    std::printf("  coverage %d/%zu, seeds:", wave.covered(),
                campaign.keywords.size());
    for (const VertexId v : wave.members) std::printf(" %u", v);
    std::printf("\n");
  }
  std::printf(
      "  inter-wave diversity dL = %.3f, min coverage = %.2f, score = %.3f\n",
      dktg->diversity, dktg->min_coverage, dktg->score);
  return 0;
}
